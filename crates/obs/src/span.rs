//! RAII scoped-span timers aggregating into a hierarchical
//! self-profile.
//!
//! A [`Span`] measures one scope; nesting is *lexical* — child spans
//! are created from their parent guard ([`Span::child`]) — so the
//! hierarchy is enforced by borrows, never by thread-local ambient
//! state, and the aggregated tree shape is a deterministic function of
//! the code path taken. Durations come from the [`Clock`] injected
//! into the [`Profiler`], so tests use a
//! [`ManualClock`](crate::ManualClock) and assert exact values.
//!
//! Aggregation is by *path*: every occurrence of `epoch > step > grad`
//! folds into one node with a count and a total. The report computes
//! per-node *self* time (total minus children — the parent/child cycle
//! attribution), renders a printable tree, and exports JSON in the
//! repo's hand-rolled conventions.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

use crate::clock::{Clock, MonotonicClock};
use crate::json;

/// One aggregated node in the live profile tree.
#[derive(Debug)]
struct Node {
    name: &'static str,
    children: BTreeMap<&'static str, usize>,
    count: u64,
    total_ns: u64,
}

impl Node {
    fn new(name: &'static str) -> Self {
        Node {
            name,
            children: BTreeMap::new(),
            count: 0,
            total_ns: 0,
        }
    }
}

/// Collects scoped spans into a hierarchical self-profile.
///
/// Cheap to share by reference across a function tree; span entry and
/// exit each take one short internal lock. Span *names* must be
/// `'static` (they come from string literals at instrumentation
/// sites).
pub struct Profiler {
    clock: Arc<dyn Clock>,
    /// Arena of nodes; index 0 is the synthetic root whose children
    /// are the top-level spans.
    tree: Mutex<Vec<Node>>,
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler").finish_non_exhaustive()
    }
}

impl Profiler {
    /// Creates a profiler reading time from `clock`.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Profiler {
            clock,
            tree: Mutex::new(vec![Node::new("")]),
        }
    }

    /// Creates a profiler on the production wall clock.
    pub fn monotonic() -> Self {
        Profiler::new(Arc::new(MonotonicClock::new()))
    }

    /// Opens a top-level span named `name`; time accrues to it until
    /// the returned guard drops.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        self.enter(0, name)
    }

    fn enter(&self, parent: usize, name: &'static str) -> Span<'_> {
        let node = {
            let mut tree = self.tree.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(&existing) = tree[parent].children.get(name) {
                existing
            } else {
                let id = tree.len();
                tree.push(Node::new(name));
                tree[parent].children.insert(name, id);
                id
            }
        };
        Span {
            profiler: self,
            node,
            started_ns: self.clock.now_ns(),
        }
    }

    fn exit(&self, node: usize, started_ns: u64) {
        let elapsed = self.clock.now_ns().saturating_sub(started_ns);
        let mut tree = self.tree.lock().unwrap_or_else(PoisonError::into_inner);
        tree[node].count += 1;
        tree[node].total_ns += elapsed;
    }

    /// Snapshots the aggregated profile. Spans still open contribute
    /// their children but not yet their own time.
    pub fn report(&self) -> ProfileReport {
        let tree = self.tree.lock().unwrap_or_else(PoisonError::into_inner);
        fn build(tree: &[Node], id: usize) -> SpanNode {
            let n = &tree[id];
            let children: Vec<SpanNode> = n.children.values().map(|&c| build(tree, c)).collect();
            let child_ns: u64 = children.iter().map(|c| c.total_ns).sum();
            SpanNode {
                name: n.name.to_string(),
                count: n.count,
                total_ns: n.total_ns,
                self_ns: n.total_ns.saturating_sub(child_ns),
                children,
            }
        }
        ProfileReport {
            roots: tree[0]
                .children
                .values()
                .map(|&c| build(&tree, c))
                .collect(),
        }
    }
}

/// RAII guard for one span occurrence: created by [`Profiler::span`]
/// or [`Span::child`], records its elapsed time on drop.
#[derive(Debug)]
pub struct Span<'p> {
    profiler: &'p Profiler,
    node: usize,
    started_ns: u64,
}

impl<'p> Span<'p> {
    /// Opens a child span under this one.
    pub fn child(&self, name: &'static str) -> Span<'p> {
        self.profiler.enter(self.node, name)
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.profiler.exit(self.node, self.started_ns);
    }
}

/// One aggregated span in a [`ProfileReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name (the string given at the instrumentation site).
    pub name: String,
    /// Closed occurrences of this path.
    pub count: u64,
    /// Total nanoseconds across occurrences (children included).
    pub total_ns: u64,
    /// Nanoseconds not attributed to any child span.
    pub self_ns: u64,
    /// Child spans, sorted by name.
    pub children: Vec<SpanNode>,
}

/// An aggregated span-tree snapshot from [`Profiler::report`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProfileReport {
    /// Top-level spans, sorted by name.
    pub roots: Vec<SpanNode>,
}

impl ProfileReport {
    /// Renders the tree as indented text, one span per line.
    pub fn render_tree(&self) -> String {
        fn walk(out: &mut String, node: &SpanNode, depth: usize) {
            let indent = "  ".repeat(depth);
            out.push_str(&format!(
                "{indent}{:<width$} count {:>8}  total {:>12} ns  self {:>12} ns\n",
                node.name,
                node.count,
                node.total_ns,
                node.self_ns,
                width = 24usize.saturating_sub(indent.len()),
            ));
            for c in &node.children {
                walk(out, c, depth + 1);
            }
        }
        let mut out = String::new();
        for r in &self.roots {
            walk(&mut out, r, 0);
        }
        out
    }

    /// Renders one JSON array value of span objects
    /// (`[{"name", "count", "total_ns", "self_ns", "children"}]`),
    /// compact, no trailing newline.
    pub fn to_json(&self) -> String {
        fn value(node: &SpanNode) -> String {
            let children: Vec<String> = node.children.iter().map(value).collect();
            format!(
                "{{\"name\": \"{}\", \"count\": {}, \"total_ns\": {}, \"self_ns\": {}, \"children\": [{}]}}",
                json::escape(&node.name),
                node.count,
                node.total_ns,
                node.self_ns,
                children.join(", "),
            )
        }
        let roots: Vec<String> = self.roots.iter().map(value).collect();
        format!("[{}]", roots.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn manual() -> (Arc<ManualClock>, Profiler) {
        let clock = Arc::new(ManualClock::new());
        let profiler = Profiler::new(clock.clone());
        (clock, profiler)
    }

    #[test]
    fn spans_aggregate_by_path_with_self_attribution() {
        let (clock, p) = manual();
        for _ in 0..3 {
            let epoch = p.span("epoch");
            clock.advance(10);
            {
                let step = epoch.child("step");
                clock.advance(100);
                drop(step);
            }
            clock.advance(5);
            drop(epoch);
        }
        let r = p.report();
        assert_eq!(r.roots.len(), 1);
        let epoch = &r.roots[0];
        assert_eq!(epoch.name, "epoch");
        assert_eq!(epoch.count, 3);
        assert_eq!(epoch.total_ns, 3 * 115);
        assert_eq!(epoch.self_ns, 3 * 15);
        assert_eq!(epoch.children.len(), 1);
        assert_eq!(epoch.children[0].name, "step");
        assert_eq!(epoch.children[0].count, 3);
        assert_eq!(epoch.children[0].total_ns, 300);
        assert_eq!(epoch.children[0].self_ns, 300);
    }

    #[test]
    fn sibling_spans_sorted_and_counted_separately() {
        let (clock, p) = manual();
        let root = p.span("train");
        for _ in 0..2 {
            let g = root.child("grad");
            clock.advance(7);
            drop(g);
            let a = root.child("apply");
            clock.advance(3);
            drop(a);
        }
        drop(root);
        let r = p.report();
        let names: Vec<&str> = r.roots[0]
            .children
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(names, vec!["apply", "grad"], "children sorted by name");
        assert_eq!(r.roots[0].children[0].total_ns, 6);
        assert_eq!(r.roots[0].children[1].total_ns, 14);
    }

    #[test]
    fn render_and_json_are_deterministic_and_valid() {
        let (clock, p) = manual();
        {
            let s = p.span("serve");
            clock.advance(1_000);
            let c = s.child("forward");
            clock.advance(2_000);
            drop(c);
        }
        let r = p.report();
        let json = r.to_json();
        crate::json::validate(&json).expect("span JSON must be well-formed");
        assert_eq!(json, p.report().to_json(), "byte-stable render");
        let tree = r.render_tree();
        assert!(tree.contains("serve"));
        assert!(tree.contains("  forward"));
    }

    #[test]
    fn open_spans_do_not_count_yet() {
        let (clock, p) = manual();
        let s = p.span("open");
        clock.advance(50);
        let r = p.report();
        assert_eq!(r.roots[0].count, 0);
        assert_eq!(r.roots[0].total_ns, 0);
        drop(s);
        assert_eq!(p.report().roots[0].count, 1);
        assert_eq!(p.report().roots[0].total_ns, 50);
    }
}
