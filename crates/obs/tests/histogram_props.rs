//! Property-style seeded-loop tests for histogram quantiles (repo
//! convention: explicit seeded RNG loops, no proptest dependency).
//!
//! The contract under test: for any sample set, the histogram's
//! nearest-rank quantile is the exact sorted-sample quantile when the
//! exact window still holds every sample, and within one log2 bucket
//! width of it once the histogram has degraded to bucketed mode.

use voyager_obs::Histogram;

/// splitmix64 — the workspace's stock seeded generator, inlined here
/// because `voyager-obs` sits below `voyager-tensor` in the dependency
/// graph and cannot borrow its RNG.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

const QS: [f64; 6] = [0.0, 0.25, 0.5, 0.9, 0.99, 1.0];

fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let idx = voyager_obs::nearest_rank(sorted.len(), q).expect("non-empty sample");
    sorted[idx]
}

/// Width of the log2 bucket containing `v`: the gap between its lower
/// bound and the next bucket's lower bound.
fn bucket_width(v: u64) -> u64 {
    if v < 2 {
        1
    } else {
        // [2^k, 2^(k+1)) has width 2^k, the bucket's lower bound.
        1u64 << (63 - v.leading_zeros())
    }
}

#[test]
fn exact_window_quantiles_match_sorted_samples() {
    for seed in 0..20u64 {
        let mut rng = SplitMix64(0x5eed_0000 + seed);
        let n = 1 + (rng.next_u64() % 200) as usize;
        let h = Histogram::with_exact_cap(4096); // cap >= n: exact path
        let mut samples: Vec<u64> = Vec::with_capacity(n);
        for _ in 0..n {
            let v = rng.next_u64() % 1_000_000;
            samples.push(v);
            h.record(v);
        }
        samples.sort_unstable();
        let snap = h.snapshot();
        assert!(snap.is_exact());
        for q in QS {
            assert_eq!(
                snap.quantile(q),
                exact_quantile(&samples, q),
                "seed {seed} n {n} q {q}"
            );
        }
    }
}

#[test]
fn bucketed_quantiles_within_one_bucket_width_of_exact() {
    for seed in 0..20u64 {
        let mut rng = SplitMix64(0xb1c_e7ed + seed);
        // 1k samples against a 128-entry exact window forces the
        // bucketed estimation path.
        let h = Histogram::with_exact_cap(128);
        let mut samples: Vec<u64> = Vec::with_capacity(1000);
        for _ in 0..1000 {
            // Mix magnitudes so many buckets are populated.
            let shift = (rng.next_u64() % 20) as u32;
            let v = rng.next_u64() % (1u64 << (shift + 1));
            samples.push(v);
            h.record(v);
        }
        samples.sort_unstable();
        let snap = h.snapshot();
        assert!(!snap.is_exact());
        for q in QS {
            let est = snap.quantile(q);
            let exact = exact_quantile(&samples, q);
            let width = bucket_width(exact);
            let lo = exact.saturating_sub(width);
            let hi = exact.saturating_add(width);
            assert!(
                est >= lo && est <= hi,
                "seed {seed} q {q}: estimate {est} not within one bucket \
                 width ({width}) of exact {exact}"
            );
        }
    }
}

#[test]
fn min_max_sum_are_exact_regardless_of_mode() {
    for seed in 0..10u64 {
        let mut rng = SplitMix64(0xacc_0157 + seed);
        let h = Histogram::with_exact_cap(16);
        let mut sum = 0u64;
        let mut min = u64::MAX;
        let mut max = 0u64;
        for _ in 0..500 {
            let v = rng.next_u64() % 100_000;
            sum += v;
            min = min.min(v);
            max = max.max(v);
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 500);
        assert_eq!(snap.sum(), sum);
        assert_eq!(snap.min(), min);
        assert_eq!(snap.max(), max);
        assert_eq!(snap.quantile(0.0), min, "p0 is the exact min");
        assert_eq!(snap.quantile(1.0), max, "p100 is the exact max");
    }
}
