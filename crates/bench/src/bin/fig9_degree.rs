//! Figure 9: coverage sensitivity to prefetch degree (1..8) for
//! Voyager, ISB, and the ISB+BO hybrid.
//!
//! Paper result: Voyager's coverage rises to 65.8% at degree 8 and its
//! degree-1 coverage already beats ISB (and nearly matches ISB+BO) at
//! degree 8. Voyager is run once at degree 8; lower degrees reuse the
//! truncated ranked candidate lists, exactly as a degree-limited
//! deployment would.

use voyager_bench::{mean, prepare, replay_sim, voyager_profiled_run, Scale};
use voyager_prefetch::{Isb, IsbBoHybrid, NoPrefetcher, Prefetcher};
use voyager_sim::{simulate, SimConfig};
use voyager_trace::gen::Benchmark;

const DEGREES: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let scale = Scale::from_env();
    let cfg = SimConfig::scaled();
    // coverage[series][degree index], accumulated across benchmarks.
    let mut cov: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); DEGREES.len()]; 3];
    for b in Benchmark::spec_gap() {
        eprintln!("[fig9] {b} ...");
        let w = prepare(b, scale);
        let baseline = simulate(&w.trace, &mut NoPrefetcher::new(), &cfg);
        // Profile-driven protocol (Section 5.5), matching the idealized
        // baselines' full-stream visibility.
        let vy = voyager_profiled_run(&w.stream, 8);
        for (di, &d) in DEGREES.iter().enumerate() {
            let mut isb = Isb::new();
            isb.set_degree(d);
            cov[0][di].push(
                simulate(&w.trace, &mut isb, &cfg)
                    .coverage_vs(&baseline)
                    .unwrap_or(0.0),
            );
            let mut hybrid = IsbBoHybrid::new();
            hybrid.set_degree(d);
            cov[1][di].push(
                simulate(&w.trace, &mut hybrid, &cfg)
                    .coverage_vs(&baseline)
                    .unwrap_or(0.0),
            );
            let out = replay_sim(&w.trace, vy.predictions.clone(), d);
            cov[2][di].push(out.coverage_vs(&baseline).unwrap_or(0.0));
        }
    }
    println!("\n== Figure 9: mean coverage vs prefetch degree ==");
    println!(
        "{:<8} {:>10} {:>10} {:>10}",
        "degree", "isb", "isb+bo", "voyager"
    );
    for (di, &d) in DEGREES.iter().enumerate() {
        println!(
            "{:<8} {:>10.3} {:>10.3} {:>10.3}",
            d,
            mean(&cov[0][di]),
            mean(&cov[1][di]),
            mean(&cov[2][di])
        );
    }
    println!("\npaper: Voyager at degree 1 outperforms ISB at degree 8; ISB+BO at degree 8 barely reaches Voyager at degree 1");
}
