//! Figure 15: labeling-scheme comparison — each of the five single
//! labeling schemes versus the multi-label training scheme.
//!
//! Paper result: individual schemes land close together, different
//! benchmarks prefer different schemes (the soplex `vec[leave]` case of
//! Fig. 16 needs co-occurrence), and the multi-label scheme gives a
//! small average benefit by letting the model pick the most predictable
//! label.

use voyager::{LabelMode, OnlineRun, VoyagerConfig};
use voyager_bench::{prepare, Scale, UNIFIED_WINDOW};
use voyager_trace::gen::Benchmark;
use voyager_trace::labels::LabelScheme;

/// Subset of benchmarks for the sweep (one per pattern family plus an
/// OLTP trace), documented in EXPERIMENTS.md.
const SUBSET: [Benchmark; 4] = [
    Benchmark::Pr,
    Benchmark::Soplex,
    Benchmark::Omnetpp,
    Benchmark::Search,
];

fn main() {
    let scale = Scale::from_env();
    let mut base = VoyagerConfig::scaled();
    base.train_passes = 10;
    let mut rows = Vec::new();
    for b in SUBSET {
        let w = prepare(b, scale);
        let mut values = Vec::new();
        for scheme in LabelScheme::all() {
            eprintln!("[fig15] {b} / {scheme} ...");
            let run = OnlineRun::execute_profiled(
                &w.stream,
                &base.with_labels(LabelMode::Single(scheme)),
            );
            values.push(
                run.unified_score_windowed(&w.stream, UNIFIED_WINDOW)
                    .value(),
            );
        }
        eprintln!("[fig15] {b} / multi ...");
        let multi = OnlineRun::execute_profiled(&w.stream, &base.with_labels(LabelMode::Multi));
        values.push(
            multi
                .unified_score_windowed(&w.stream, UNIFIED_WINDOW)
                .value(),
        );
        rows.push((b.name().to_string(), values));
    }
    voyager_bench::print_table(
        "Figure 15: labeling schemes (unified acc/cov, window 10)",
        &[
            "global",
            "pc",
            "basic-block",
            "spatial",
            "co-occur",
            "multi",
        ],
        &rows,
    );
    println!("\npaper: schemes are close; multi-label gives a small average benefit and wins where patterns span PCs (soplex)");
}
