//! Distilled-table serving benchmark: the four serving tiers (tape,
//! f32 fast path, int8 fast path, distilled tables with int8 fallback)
//! through the microbatch server, at the same serving-shaped
//! configuration as `pr5_infer`. Reports p50/p99 latency and
//! throughput per tier, the distillation report (table geometry,
//! eviction pressure, agreement vs the f32 teacher), live
//! `infer.table.*` counter deltas from the serving run, and the table
//! path's top-1 agreement with the teacher on a trained model. Emits
//! `BENCH_pr6_table.json` at the workspace root.
//!
//! Run `cargo run --release -p voyager-bench --bin pr6_table` for the
//! full measurement (asserts the acceptance thresholds: table p50 at
//! least 10x better than int8 and <= 400 us), or with `--smoke` for
//! the fast CI variant (same schema, fewer requests, no latency
//! assertions).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use voyager::{SeqBatch, VoyagerConfig, VoyagerModel};
use voyager_distill::{distill, DistillReport, TableConfig};
use voyager_runtime::{
    InferenceRequest, MicrobatchConfig, MicrobatchServer, PredictMode, ServiceConfig,
};

/// System allocator wrapped with a relaxed byte counter (same harness
/// as `pr5_infer`): the metric is allocator traffic, not live
/// footprint.
struct CountingAlloc;

static HEAP_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System`; the only added behavior is a
// relaxed atomic counter bump, which cannot violate the `GlobalAlloc`
// contract (no reentrancy into the allocator, layouts forwarded
// unchanged).
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: delegates to `System` with the caller's layout unchanged;
    // the counter bump is a relaxed atomic and cannot re-enter the
    // allocator.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        HEAP_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: `layout` is the caller's layout, forwarded unchanged.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: pure pass-through; `ptr`/`layout` reach `System` exactly
    // as the caller provided them.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` come from a matching `alloc` call and
        // are forwarded unchanged.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn heap_bytes() -> u64 {
    HEAP_BYTES.load(Ordering::Relaxed)
}

/// The `pr5_infer` serving-shaped model: scaled config widened to 128
/// LSTM units and an 8192-page vocabulary, so the neural tiers pay
/// GEMM costs the way paper-scale serving does. The table tier's whole
/// point is that its lookup cost is independent of these dimensions.
fn serve_config() -> (VoyagerConfig, usize) {
    let mut cfg = VoyagerConfig::scaled();
    cfg.lstm_units = 128;
    (cfg, 8192)
}

fn request(t: usize, seq_len: usize, page_vocab: usize) -> InferenceRequest {
    InferenceRequest {
        workload: Default::default(),
        pc: (0..seq_len).map(|j| (t + j) % 64).collect(),
        page: (0..seq_len).map(|j| (t * 3 + j) % page_vocab).collect(),
        offset: (0..seq_len).map(|j| (t * 5 + j) % 64).collect(),
    }
}

/// The full request workload as a distillation corpus.
fn corpus(requests: usize, seq_len: usize, page_vocab: usize) -> SeqBatch {
    let mut c = SeqBatch::default();
    for t in 0..requests {
        let r = request(t, seq_len, page_vocab);
        c.pc.push(r.pc);
        c.page.push(r.page);
        c.offset.push(r.offset);
    }
    c
}

fn mode_name(mode: PredictMode) -> &'static str {
    match mode {
        PredictMode::Tape => "tape",
        PredictMode::FastF32 => "fast_f32",
        PredictMode::FastInt8 => "fast_int8",
        PredictMode::Table => "table",
    }
}

struct PathNumbers {
    path: &'static str,
    requests: usize,
    throughput_rps: f64,
    p50_us: f64,
    p99_us: f64,
}

/// Counter deltas of the table tier's serving run.
struct TableCounters {
    hits: u64,
    misses: u64,
    fallback_rows: u64,
}

/// Closed-loop serving latency, identically batched across tiers
/// (`max_batch = 1` flushes every request immediately). For
/// [`PredictMode::Table`] the service first distills tables from the
/// full request workload, so serving measures warm tables over the
/// exact traffic distribution.
fn bench_serving(
    mode: PredictMode,
    requests: usize,
) -> (PathNumbers, Option<(DistillReport, TableCounters)>) {
    let (cfg, page_vocab) = serve_config();
    let model = VoyagerModel::new(&cfg, 64, page_vocab, 64);
    let mut table_info = None;
    let service = if mode == PredictMode::Table {
        let mut model = model;
        let (tables, report) = distill(
            &mut model,
            &corpus(requests, cfg.seq_len, page_vocab),
            &TableConfig::for_budget(1 << 20),
        );
        table_info = Some(report);
        ServiceConfig::new(2)
            .mode(PredictMode::Table)
            .tables(tables)
            .build(model)
            .expect("table mode with tables attached")
    } else {
        ServiceConfig::new(2)
            .mode(mode)
            .build(model)
            .expect("neural modes need no tables")
    };
    let mb = MicrobatchConfig {
        max_batch: 1,
        max_delay: Duration::from_millis(1),
    };
    let before = (
        voyager_distill::table_hits(),
        voyager_distill::table_misses(),
        voyager_distill::table_fallback_rows(),
    );
    let (server, client) = MicrobatchServer::spawn(service, mb);
    let clients = 4;
    std::thread::scope(|scope| {
        for c in 0..clients {
            let client = client.clone();
            let per_client = requests / clients;
            scope.spawn(move || {
                for i in 0..per_client {
                    let t = c * per_client + i;
                    std::hint::black_box(client.infer(request(t, cfg.seq_len, page_vocab)));
                }
            });
        }
    });
    drop(client);
    let stats = server.join();
    let counters = TableCounters {
        hits: voyager_distill::table_hits() - before.0,
        misses: voyager_distill::table_misses() - before.1,
        fallback_rows: voyager_distill::table_fallback_rows() - before.2,
    };
    let numbers = PathNumbers {
        path: mode_name(mode),
        requests: stats.requests,
        throughput_rps: stats.throughput(),
        p50_us: stats.latency_quantile(0.5).as_secs_f64() * 1e6,
        p99_us: stats.latency_quantile(0.99).as_secs_f64() * 1e6,
    };
    (numbers, table_info.map(|r| (r, counters)))
}

/// Trains the small fixed mapping from the core fast-path tests to
/// convergence, distills it, and returns the table-vs-f32-teacher
/// top-1 (page, offset) agreement over a 128-row evaluation batch
/// (table misses resolve through int8, exactly as serving would).
fn table_agreement() -> f64 {
    let cfg = VoyagerConfig::test();
    let mut model = VoyagerModel::new(&cfg, 16, 8, 64);
    let patterns = SeqBatch {
        pc: vec![vec![1; 4], vec![2; 4], vec![3; 4], vec![4; 4]],
        page: vec![vec![3; 4], vec![5; 4], vec![7; 4], vec![1; 4]],
        offset: vec![vec![10; 4], vec![20; 4], vec![30; 4], vec![40; 4]],
    };
    let pages: [usize; 4] = [6, 7, 2, 4];
    let offsets: [usize; 4] = [30, 40, 50, 60];
    for _ in 0..150 {
        model.train_single(&patterns, &pages, &offsets);
    }
    let rows = 128;
    let eval = SeqBatch {
        pc: (0..rows).map(|i| patterns.pc[i % 4].clone()).collect(),
        page: (0..rows).map(|i| patterns.page[i % 4].clone()).collect(),
        offset: (0..rows).map(|i| patterns.offset[i % 4].clone()).collect(),
    };
    let teacher = model.predict_fast(&eval, 1);
    let (tables, _) = distill(&mut model, &eval, &TableConfig::for_budget(64 * 1024));
    model.prepare_int8();
    let agree = (0..rows)
        .filter(|&i| {
            let Some(&last_pc) = eval.pc[i].last() else {
                return false;
            };
            let student = tables
                .predict_quiet(&eval.page[i], last_pc, 1)
                .or_else(|| {
                    let row = SeqBatch {
                        pc: vec![eval.pc[i].clone()],
                        page: vec![eval.page[i].clone()],
                        offset: vec![eval.offset[i].clone()],
                    };
                    model.predict_int8(&row, 1).into_iter().next()
                })
                .and_then(|preds| preds.first().copied());
            student.is_some_and(|(p, o, _)| (p, o) == (teacher[i][0].0, teacher[i][0].1))
        })
        .count();
    agree as f64 / rows as f64
}

fn fmt_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.0".to_string()
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), fmt_f)
}

fn render_json(
    mode: &str,
    paths: &[PathNumbers],
    report: &DistillReport,
    counters: &TableCounters,
    agreement: f64,
    distill_us: f64,
) -> String {
    let p50 = |name: &str| {
        paths
            .iter()
            .find(|p| p.path == name)
            .map(|p| p.p50_us)
            .unwrap_or(0.0)
    };
    let int8 = p50("fast_int8");
    let table = p50("table");
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"pr6_table\",\n");
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str("  \"serve\": [\n");
    for (i, p) in paths.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"path\": \"{}\", \"requests\": {}, \"throughput_rps\": {}, \"p50_us\": {}, \"p99_us\": {}}}{}\n",
            p.path,
            p.requests,
            fmt_f(p.throughput_rps),
            fmt_f(p.p50_us),
            fmt_f(p.p99_us),
            if i + 1 < paths.len() { "," } else { "" },
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"table_vs_int8_speedup_p50\": {},\n",
        fmt_f(if table > 0.0 { int8 / table } else { 0.0 })
    ));
    s.push_str(&format!(
        "  \"table_top1_agreement\": {},\n",
        fmt_f(agreement)
    ));
    s.push_str(&format!("  \"distill_us\": {},\n", fmt_f(distill_us)));
    s.push_str("  \"table\": {\n");
    s.push_str(&format!("    \"samples\": {},\n", report.samples));
    s.push_str(&format!(
        "    \"page\": {{\"entries\": {}, \"claimed\": {}, \"merged\": {}, \"collisions_kept\": {}, \"evictions\": {}}},\n",
        report.page.entries,
        report.page.claimed,
        report.page.merged,
        report.page.collisions_kept,
        report.page.evictions,
    ));
    s.push_str(&format!(
        "    \"offset\": {{\"entries\": {}, \"claimed\": {}, \"merged\": {}, \"collisions_kept\": {}, \"evictions\": {}}},\n",
        report.offset.entries,
        report.offset.claimed,
        report.offset.merged,
        report.offset.collisions_kept,
        report.offset.evictions,
    ));
    s.push_str(&format!("    \"memory_bytes\": {},\n", report.memory_bytes));
    s.push_str(&format!(
        "    \"corpus_hit_rate\": {},\n",
        fmt_opt(report.hit_rate)
    ));
    s.push_str(&format!(
        "    \"page_agreement\": {},\n",
        fmt_opt(report.page_agreement)
    ));
    s.push_str(&format!(
        "    \"offset_agreement\": {},\n",
        fmt_opt(report.offset_agreement)
    ));
    s.push_str(&format!(
        "    \"joint_agreement\": {},\n",
        fmt_opt(report.joint_agreement)
    ));
    s.push_str(&format!(
        "    \"serve_hits\": {}, \"serve_misses\": {}, \"serve_fallback_rows\": {}\n",
        counters.hits, counters.misses, counters.fallback_rows,
    ));
    s.push_str("  }\n");
    s.push_str("}\n");
    s
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let requests = if smoke { 64 } else { 2048 };

    let agreement = table_agreement();
    println!("table top-1 agreement vs f32 teacher: {agreement:.4}");
    assert!(
        agreement >= 0.90,
        "table top-1 agreement {agreement} below the 0.90 acceptance floor"
    );

    // Heap traffic of one warm table lookup, for the log (the neural
    // tiers' per-call numbers live in BENCH_pr5_infer.json).
    {
        let (cfg, page_vocab) = serve_config();
        let mut model = VoyagerModel::new(&cfg, 64, page_vocab, 64);
        let (tables, _) = distill(
            &mut model,
            &corpus(64, cfg.seq_len, page_vocab),
            &TableConfig::for_budget(1 << 20),
        );
        let probe = request(0, cfg.seq_len, page_vocab);
        let last_pc = probe.pc[probe.pc.len() - 1];
        std::hint::black_box(tables.predict_quiet(&probe.page, last_pc, 2));
        let before = heap_bytes();
        for _ in 0..64 {
            std::hint::black_box(tables.predict_quiet(&probe.page, last_pc, 2));
        }
        println!(
            "table lookup heap traffic: {:.0} bytes/call",
            (heap_bytes() - before) as f64 / 64.0
        );
    }

    // One-time distillation cost over the full workload, measured
    // apart from serving (bench_serving re-distills for the table
    // tier; the work is identical and deterministic).
    let distill_us = {
        let (cfg, page_vocab) = serve_config();
        let mut model = VoyagerModel::new(&cfg, 64, page_vocab, 64);
        let c = corpus(requests, cfg.seq_len, page_vocab);
        let t0 = std::time::Instant::now();
        std::hint::black_box(distill(&mut model, &c, &TableConfig::for_budget(1 << 20)));
        t0.elapsed().as_secs_f64() * 1e6
    };
    println!("distillation of {requests} windows: {:.0} us", distill_us);

    let mut paths = Vec::new();
    let mut table_extra = None;
    for mode in [
        PredictMode::Tape,
        PredictMode::FastF32,
        PredictMode::FastInt8,
        PredictMode::Table,
    ] {
        let (numbers, extra) = bench_serving(mode, requests);
        println!(
            "serve/{}: {} requests, {:.0} rps, p50 {:.0} us, p99 {:.0} us",
            numbers.path, numbers.requests, numbers.throughput_rps, numbers.p50_us, numbers.p99_us,
        );
        paths.push(numbers);
        if extra.is_some() {
            table_extra = extra;
        }
    }
    let Some((report, counters)) = table_extra else {
        eprintln!("table tier produced no distillation report");
        std::process::exit(1);
    };
    println!(
        "table tier: {} page / {} offset entries, {} KiB, corpus hit rate {}, serve hits {} / misses {}",
        report.page.entries,
        report.offset.entries,
        report.memory_bytes / 1024,
        fmt_opt(report.hit_rate),
        counters.hits,
        counters.misses,
    );

    let int8_p50 = paths[2].p50_us;
    let table_p50 = paths[3].p50_us;
    println!(
        "table speedup over int8 (p50): {:.1}x",
        if table_p50 > 0.0 {
            int8_p50 / table_p50
        } else {
            0.0
        }
    );
    if !smoke {
        // Acceptance thresholds are asserted only in full mode; smoke
        // runs on loaded CI machines validate the harness and schema.
        assert!(
            table_p50 * 10.0 <= int8_p50,
            "table serve p50 ({table_p50:.0} us) must be at least 10x better than int8 ({int8_p50:.0} us)"
        );
        assert!(
            table_p50 <= 400.0,
            "table serve p50 ({table_p50:.0} us) must be at most 400 us"
        );
    }

    let json = render_json(
        if smoke { "smoke" } else { "full" },
        &paths,
        &report,
        &counters,
        agreement,
        distill_us,
    );
    if let Err(e) = voyager_obs::json::validate(&json) {
        eprintln!("generated JSON is malformed: {e}\n{json}");
        std::process::exit(1);
    }
    // Smoke runs (CI) validate the harness without clobbering the
    // committed full-mode measurement at the workspace root.
    let path = if smoke {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_pr6_table.smoke.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr6_table.json")
    };
    std::fs::write(path, &json).expect("write BENCH_pr6_table.json");
    println!("wrote {path}");
}
