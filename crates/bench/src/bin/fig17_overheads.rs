//! Figure 17 / Section 5.4: model compression and overhead comparison.
//!
//! Paper results: Voyager is 20–56× smaller than Delta-LSTM before
//! compression; 80% magnitude pruning (5–7×) plus 8-bit quantization
//! (4×) with <1% accuracy loss brings the total to 110–200×, leaving
//! Voyager 5–10× smaller than the metadata of conventional temporal
//! prefetchers; training and prediction are 15–20× cheaper than
//! Delta-LSTM's (whose paper-scale vocabulary is in the millions of
//! deltas — here modelled at 50K).

use voyager::{DeltaLstm, DeltaLstmConfig, OnlineRun, VoyagerConfig, VoyagerModel};
use voyager_bench::{baseline_predictions, prepare, Scale, UNIFIED_WINDOW};
use voyager_nn::compress;
use voyager_prefetch::{Domino, Isb, Prefetcher, Stms};
use voyager_sim::unified_accuracy_coverage_windowed as score;
use voyager_trace::gen::Benchmark;

fn main() {
    let scale = Scale::from_env();

    println!("== Paper-scale model sizes (Table 1 / Hashemi et al. configs) ==");
    // Voyager at Table 1 scale on an mcf-sized vocabulary (91K pages).
    let paper_voyager = VoyagerModel::new(&VoyagerConfig::paper(), 169, 91_100, 64);
    let paper_delta = DeltaLstm::new(&DeltaLstmConfig::paper(), 1_000_000);
    let vp = paper_voyager.model_size();
    println!(
        "voyager (paper cfg, mcf vocab):   {:>12} params {:>12} bytes",
        vp.params, vp.dense_f32
    );
    println!(
        "delta-lstm (paper cfg, 1M deltas): {:>12} params {:>12} bytes  ({:.1}x voyager)",
        paper_delta.num_params(),
        paper_delta.num_params() * 4,
        paper_delta.num_params() as f64 / vp.params as f64
    );

    println!("\n== Trained scaled models on mcf ==");
    let w = prepare(Benchmark::Mcf, scale);
    let stream = &w.stream;
    let cfg = VoyagerConfig::scaled();
    let run = OnlineRun::execute(stream, &cfg);
    let base_score = run.unified_score_windowed(stream, UNIFIED_WINDOW);
    println!(
        "voyager: {} params, train {:.1}s, prediction latency {:.0} ns/access, acc/cov {:.3}",
        run.model_params,
        run.train_seconds,
        run.prediction_latency_ns(),
        base_score.value()
    );
    let dl = DeltaLstm::run_online(stream, &DeltaLstmConfig::scaled());
    println!(
        "delta-lstm: {} params, train {:.1}s, prediction latency {:.0} ns/access, acc/cov {:.3}",
        dl.model_params,
        dl.train_seconds,
        dl.prediction_latency_ns(),
        dl.unified_score_windowed(stream, UNIFIED_WINDOW).value()
    );

    println!("\n== Compression (Section 5.4): retrain-free prune + int8 ==");
    // Re-train a model, then prune 80% and quantize, re-evaluating the
    // predictions it would make. We re-run the online protocol with the
    // compressed weights applied after training of each epoch is not
    // possible without retraining hooks, so we compress the final model
    // and evaluate on the last epoch's samples via a fresh run with
    // identical seeds (predictions of the uncompressed run serve as the
    // reference).
    let vocab = voyager_trace::vocab::Vocabulary::build(stream, &cfg.vocab);
    let mut model = VoyagerModel::new(
        &cfg,
        vocab.pc_vocab_len(),
        vocab.page_vocab_len(),
        vocab.offset_vocab_len(),
    );
    let before = compress::model_size(model.store());
    let zeroed = compress::prune_magnitude(model.store_mut(), 0.8);
    let err = compress::quantize_store_inplace(model.store_mut());
    let after = compress::model_size(model.store());
    println!(
        "dense {} B -> pruned sparse {} B -> +int8 {} B ({:.1}x smaller; {} weights zeroed, max quant err {:.4})",
        before.dense_f32,
        after.sparse_f32,
        after.sparse_int8,
        before.dense_f32 as f64 / after.sparse_int8 as f64,
        zeroed,
        err
    );

    println!("\n== Temporal prefetcher metadata on the same stream ==");
    for (name, mut p) in [
        ("stms", Box::new(Stms::new()) as Box<dyn Prefetcher>),
        ("domino", Box::new(Domino::new())),
        ("isb", Box::new(Isb::new())),
    ] {
        let preds = baseline_predictions(stream, p.as_mut());
        let s = score(stream, &preds, UNIFIED_WINDOW);
        println!(
            "{name:<8} metadata {:>12} bytes, acc/cov {:.3}",
            p.metadata_bytes(),
            s.value()
        );
    }
    println!(
        "\nvoyager compressed size: {} bytes (paper: smaller than STMS/Domino/ISB metadata)",
        after.sparse_int8
    );
}
