//! Figure 7: unified accuracy/coverage on all 11 benchmarks, including
//! Google's search and ads.
//!
//! Paper result (averages): STMS 38.6%, Domino 43.3%, ISB 51.1%, BO
//! 28.8%, Delta-LSTM 52.9%, Voyager 73.9%; on search/ads Voyager gets
//! 37.8%/57.5% vs 13.8%/26.2% for ISB. The reproduction target is the
//! *ordering* (Voyager on top, BO lowest among useful baselines on
//! irregular workloads) and the search/ads gap.

use voyager::{DeltaLstm, DeltaLstmConfig};
use voyager_bench::{
    baseline_predictions, prepare, voyager_profiled_run, voyager_run, Scale, UNIFIED_WINDOW,
};
use voyager_prefetch::{BestOffset, Domino, Isb, Prefetcher, Stms};
use voyager_sim::unified_accuracy_coverage_windowed as score;
use voyager_trace::gen::Benchmark;

fn main() {
    let scale = Scale::from_env();
    let mut rows = Vec::new();
    for b in Benchmark::all() {
        eprintln!("[fig7] {b} ...");
        let w = prepare(b, scale);
        let stream = &w.stream;
        let mut values = Vec::new();
        let mut classical: Vec<Box<dyn Prefetcher>> = vec![
            Box::new(Stms::new()),
            Box::new(Domino::new()),
            Box::new(Isb::new()),
            Box::new(BestOffset::new()),
        ];
        for p in &mut classical {
            let preds = baseline_predictions(stream, p.as_mut());
            values.push(score(stream, &preds, UNIFIED_WINDOW).value());
        }
        let dl = DeltaLstm::run_online(stream, &DeltaLstmConfig::scaled());
        values.push(score(stream, &dl.predictions, UNIFIED_WINDOW).value());
        let vy = voyager_run(stream, 1);
        values.push(score(stream, &vy.predictions, UNIFIED_WINDOW).value());
        let vp = voyager_profiled_run(stream, 1);
        values.push(score(stream, &vp.predictions, UNIFIED_WINDOW).value());
        rows.push((b.name().to_string(), values));
    }
    voyager_bench::print_table(
        "Figure 7: unified accuracy/coverage (window 10)",
        &[
            "stms",
            "domino",
            "isb",
            "bo",
            "delta-lstm",
            "voyager",
            "voyager-prof",
        ],
        &rows,
    );
    println!("\npaper means: stms 0.386, domino 0.433, isb 0.511, bo 0.288, delta-lstm 0.529, voyager 0.739");
    println!("(voyager = online protocol of Section 5.1; voyager-prof = profile-driven protocol of Section 5.5,");
    println!(
        " the apples-to-apples counterpart of the idealized, unbounded-metadata table baselines)"
    );
}
