//! Section 5.3.1 (mcf): the delta vocabulary and compulsory misses.
//!
//! Paper result: adding 10 deltas to the vocabulary reduces mcf's
//! uncovered compulsory misses from 21.6% to 0.2% and lifts overall
//! coverage from 49.1% to 68%.

use std::collections::HashSet;

use voyager::{OnlineRun, VoyagerConfig};
use voyager_bench::{prepare, Scale, UNIFIED_WINDOW};
use voyager_trace::gen::Benchmark;
use voyager_trace::Trace;

/// Fraction of first-touch (compulsory) targets covered by predictions
/// in the preceding window.
fn compulsory_stats(stream: &Trace, predictions: &[Vec<u64>]) -> (f64, f64) {
    let mut seen = HashSet::new();
    seen.insert(stream[0].line());
    let (mut compulsory, mut covered) = (0usize, 0usize);
    for t in 1..stream.len() {
        let line = stream[t].line();
        if seen.insert(line) {
            compulsory += 1;
            if (t.saturating_sub(UNIFIED_WINDOW)..t).any(|j| predictions[j].contains(&line)) {
                covered += 1;
            }
        }
    }
    (
        compulsory as f64 / stream.len() as f64,
        covered as f64 / compulsory.max(1) as f64,
    )
}

fn main() {
    let scale = Scale::from_env();
    let w = prepare(Benchmark::Mcf, scale);
    let stream = &w.stream;

    eprintln!("[mcf_delta] Voyager w/o delta ...");
    let mut cfg_wo = VoyagerConfig::scaled().without_deltas();
    cfg_wo.train_passes = 10;
    let without = OnlineRun::execute_profiled(stream, &cfg_wo);
    eprintln!("[mcf_delta] Voyager with delta vocabulary ...");
    let mut cfg_w = VoyagerConfig::scaled();
    cfg_w.train_passes = 10;
    let with = OnlineRun::execute_profiled(stream, &cfg_w);

    let (comp_frac, cov_without) = compulsory_stats(stream, &without.predictions);
    let (_, cov_with) = compulsory_stats(stream, &with.predictions);
    println!("\n== mcf delta-vocabulary ablation ==");
    println!(
        "compulsory (first-touch) fraction of stream: {:.3} (paper: 0.216)",
        comp_frac
    );
    println!(
        "compulsory coverage:  w/o delta {:.3}  ->  with delta {:.3} (paper: ~0 -> 0.99)",
        cov_without, cov_with
    );
    println!(
        "overall acc/cov:      w/o delta {:.3}  ->  with delta {:.3} (paper coverage: 0.491 -> 0.680)",
        without.unified_score_windowed(stream, UNIFIED_WINDOW).value(),
        with.unified_score_windowed(stream, UNIFIED_WINDOW).value()
    );
}
