//! Sharded fleet serving benchmark: ≥4 per-workload shards in mixed
//! serving tiers (table-fronted int8, pure int8, fast-f32) behind
//! SLO-aware admission control, driven at high request rate by
//! closed-loop clients. Two phases:
//!
//! 1. **Steady + hot swap**: roomy bounds, concurrent clients per
//!    shard, and a mid-run registry publish of a new version for shard
//!    `w0`. Verifies the swap lands while traffic is streaming, that
//!    not a single request is dropped or shed, and reports per-shard
//!    p50/p99 latency plus the table tier's hit/fallback mix.
//! 2. **Overload**: the same fleet spawned with a tiny queue bound and
//!    a tight SLO, offered far more concurrency than it can absorb.
//!    Verifies admission control sheds (rather than queueing without
//!    bound) while the p99 of *admitted* requests stays within the
//!    SLO.
//!
//! Emits `BENCH_pr8_fleet.json` at the workspace root. Run
//! `cargo run --release -p voyager-bench --bin pr8_fleet` for the full
//! measurement (asserts shed rate > 0 under overload and admitted p99
//! <= SLO), or with `--smoke` for the fast CI variant (same schema,
//! fewer requests, no latency assertions; the zero-drop hot-swap
//! invariants are asserted in both modes).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use voyager_bench::fleet_demo;
use voyager_runtime::{
    FleetClient, FleetError, FleetServer, FleetStats, ModelRegistry, PredictMode, ShardSpec,
    WorkloadId,
};

const SHARDS: usize = 4;
const SWAP_WORKLOAD: WorkloadId = WorkloadId(0);

fn mode_name(mode: PredictMode) -> &'static str {
    match mode {
        PredictMode::Tape => "tape",
        PredictMode::FastF32 => "fast_f32",
        PredictMode::FastInt8 => "fast_int8",
        PredictMode::Table => "table",
    }
}

/// Closed-loop load: `clients` threads per shard, each issuing
/// `per_client` requests of its workload's stream. Returns
/// (ok, shed, other_errors) totals.
fn drive(
    client: &FleetClient,
    shards: &[ShardSpec],
    clients: usize,
    per_client: usize,
    completed: &Arc<AtomicUsize>,
) -> (usize, usize, usize) {
    let ok = AtomicUsize::new(0);
    let shed = AtomicUsize::new(0);
    let other = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for shard in shards {
            for c in 0..clients {
                let client = client.clone();
                let workload = shard.workload;
                let (ok, shed, other) = (&ok, &shed, &other);
                let completed = completed.clone();
                scope.spawn(move || {
                    for i in 0..per_client {
                        let t = c * per_client + i;
                        match client.infer(fleet_demo::request(workload, t)) {
                            Ok(_) => {
                                ok.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(FleetError::Shed(_)) => {
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                other.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        }
    });
    (
        ok.load(Ordering::Relaxed),
        shed.load(Ordering::Relaxed),
        other.load(Ordering::Relaxed),
    )
}

struct SwapOutcome {
    published_version: u64,
    observed_ms: f64,
}

struct PhaseOutcome {
    stats: FleetStats,
    elapsed_s: f64,
    ok: usize,
    shed: usize,
    other: usize,
    swap: Option<SwapOutcome>,
    table_hits: u64,
    table_misses: u64,
    table_fallback_rows: u64,
}

/// Steady-state serving with a mid-run hot swap: publishes a
/// pre-trained v2 for [`SWAP_WORKLOAD`] once a quarter of the offered
/// load has completed, then polls live fleet metrics until the shard
/// reports the swap.
fn steady_phase(
    registry: &Arc<ModelRegistry>,
    shards: &[ShardSpec],
    clients: usize,
    per_client: usize,
    train_steps: usize,
    distill_windows: usize,
) -> PhaseOutcome {
    let (server, client) =
        FleetServer::spawn(registry, shards, &fleet_demo::steady_config()).expect("spawn fleet");
    let table_before = (
        voyager_distill::table_hits(),
        voyager_distill::table_misses(),
        voyager_distill::table_fallback_rows(),
    );

    // v2 for the swap shard is trained (and distilled) up front so the
    // publish itself is quick enough to land mid-stream.
    let mut v2 = fleet_demo::trained_model(SWAP_WORKLOAD, train_steps, 1);
    let v2_tables = fleet_demo::tables_for(&mut v2, SWAP_WORKLOAD, distill_windows);

    let completed = Arc::new(AtomicUsize::new(0));
    let offered = shards.len() * clients * per_client;
    let started = Instant::now();
    let (outcome, swap) = std::thread::scope(|scope| {
        let load = {
            let client = client.clone();
            let completed = completed.clone();
            scope.spawn(move || drive(&client, shards, clients, per_client, &completed))
        };
        while completed.load(Ordering::Relaxed) < offered / 4 {
            std::thread::yield_now();
        }
        let published = registry
            .publish(
                SWAP_WORKLOAD,
                &fleet_demo::model_spec(),
                &v2,
                Some(v2_tables),
            )
            .expect("mid-run publish");
        let publish_at = Instant::now();
        // The shard adopts between batches; with clients streaming the
        // swap must become visible on live metrics almost immediately.
        let swap_key = format!("fleet.shard.{SWAP_WORKLOAD}.swaps");
        let deadline = publish_at + Duration::from_secs(30);
        let observed_ms = loop {
            let live = server.metrics();
            if live.counters.get(swap_key.as_str()).copied().unwrap_or(0) >= 1 {
                break publish_at.elapsed().as_secs_f64() * 1e3;
            }
            assert!(
                Instant::now() < deadline,
                "hot swap not observed on live metrics within 30s of publish"
            );
            std::thread::yield_now();
        };
        (
            load.join().expect("load thread"),
            SwapOutcome {
                published_version: published.0,
                observed_ms,
            },
        )
    });
    let elapsed_s = started.elapsed().as_secs_f64();
    drop(client);
    let stats = server.join();
    PhaseOutcome {
        stats,
        elapsed_s,
        ok: outcome.0,
        shed: outcome.1,
        other: outcome.2,
        swap: Some(swap),
        table_hits: voyager_distill::table_hits() - table_before.0,
        table_misses: voyager_distill::table_misses() - table_before.1,
        table_fallback_rows: voyager_distill::table_fallback_rows() - table_before.2,
    }
}

/// Overload: a fresh fleet at deliberately tight bounds, offered far
/// more closed-loop concurrency than the queue bound admits.
fn overload_phase(
    registry: &Arc<ModelRegistry>,
    shards: &[ShardSpec],
    clients: usize,
    per_client: usize,
) -> PhaseOutcome {
    let (server, client) =
        FleetServer::spawn(registry, shards, &fleet_demo::overload_config()).expect("spawn fleet");
    let table_before = (
        voyager_distill::table_hits(),
        voyager_distill::table_misses(),
        voyager_distill::table_fallback_rows(),
    );
    let completed = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();
    let (ok, shed, other) = drive(&client, shards, clients, per_client, &completed);
    let elapsed_s = started.elapsed().as_secs_f64();
    drop(client);
    let stats = server.join();
    PhaseOutcome {
        stats,
        elapsed_s,
        ok,
        shed,
        other,
        swap: None,
        table_hits: voyager_distill::table_hits() - table_before.0,
        table_misses: voyager_distill::table_misses() - table_before.1,
        table_fallback_rows: voyager_distill::table_fallback_rows() - table_before.2,
    }
}

fn fmt_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.0".to_string()
    }
}

fn render_phase(out: &PhaseOutcome, shards: &[ShardSpec], indent: &str) -> String {
    let mut s = String::new();
    let offered = out.ok + out.shed + out.other;
    s.push_str(&format!("{indent}\"offered\": {},\n", offered));
    s.push_str(&format!("{indent}\"admitted\": {},\n", out.ok));
    s.push_str(&format!("{indent}\"shed\": {},\n", out.shed));
    s.push_str(&format!(
        "{indent}\"shed_rate\": {},\n",
        fmt_f(if offered > 0 {
            out.shed as f64 / offered as f64
        } else {
            0.0
        })
    ));
    s.push_str(&format!(
        "{indent}\"elapsed_s\": {},\n",
        fmt_f(out.elapsed_s)
    ));
    s.push_str(&format!(
        "{indent}\"throughput_rps\": {},\n",
        fmt_f(if out.elapsed_s > 0.0 {
            out.ok as f64 / out.elapsed_s
        } else {
            0.0
        })
    ));
    s.push_str(&format!(
        "{indent}\"table\": {{\"hits\": {}, \"misses\": {}, \"fallback_rows\": {}}},\n",
        out.table_hits, out.table_misses, out.table_fallback_rows,
    ));
    if let Some(swap) = &out.swap {
        s.push_str(&format!(
            "{indent}\"swap\": {{\"workload\": \"{SWAP_WORKLOAD}\", \"published_version\": {}, \"observed_ms\": {}}},\n",
            swap.published_version,
            fmt_f(swap.observed_ms),
        ));
    }
    s.push_str(&format!("{indent}\"shards\": [\n"));
    for (i, report) in out.stats.shards.iter().enumerate() {
        let mode = shards
            .iter()
            .find(|spec| spec.workload == report.workload)
            .map(|spec| mode_name(spec.mode))
            .unwrap_or("unknown");
        s.push_str(&format!(
            "{indent}  {{\"name\": \"{}\", \"mode\": \"{}\", \"admitted\": {}, \"shed_queue_full\": {}, \"shed_deadline\": {}, \"p50_us\": {}, \"p99_us\": {}, \"version\": {}, \"swaps\": {}, \"swap_failures\": {}, \"table_absent\": {}}}{}\n",
            report.name,
            mode,
            report.admitted,
            report.shed_queue_full,
            report.shed_deadline,
            fmt_f(report.latency.quantile(0.5) as f64 / 1e3),
            fmt_f(report.latency.quantile(0.99) as f64 / 1e3),
            report.version,
            report.swaps,
            report.swap_failures,
            report.table_absent,
            if i + 1 < out.stats.shards.len() { "," } else { "" },
        ));
    }
    s.push_str(&format!("{indent}]\n"));
    s
}

fn render_json(
    mode: &str,
    shards: &[ShardSpec],
    steady: &PhaseOutcome,
    overload: &PhaseOutcome,
    slo_us: u64,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"pr8_fleet\",\n");
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str(&format!("  \"shards\": {},\n", shards.len()));
    s.push_str(&format!("  \"overload_slo_us\": {slo_us},\n"));
    s.push_str("  \"steady\": {\n");
    s.push_str(&render_phase(steady, shards, "    "));
    s.push_str("  },\n");
    s.push_str("  \"overload\": {\n");
    s.push_str(&render_phase(overload, shards, "    "));
    s.push_str("  }\n");
    s.push_str("}\n");
    s
}

fn print_phase(name: &str, out: &PhaseOutcome) {
    let offered = out.ok + out.shed + out.other;
    println!(
        "{name}: offered {offered}, admitted {}, shed {} ({:.1}%), {:.0} rps, table hits {} / fallback rows {}",
        out.ok,
        out.shed,
        if offered > 0 {
            100.0 * out.shed as f64 / offered as f64
        } else {
            0.0
        },
        if out.elapsed_s > 0.0 {
            out.ok as f64 / out.elapsed_s
        } else {
            0.0
        },
        out.table_hits,
        out.table_fallback_rows,
    );
    for report in &out.stats.shards {
        println!(
            "  shard {}: admitted {}, shed {} (queue {}, deadline {}), p50 {:.0} us, p99 {:.0} us, v{}, swaps {}",
            report.name,
            report.admitted,
            report.shed(),
            report.shed_queue_full,
            report.shed_deadline,
            report.latency.quantile(0.5) as f64 / 1e3,
            report.latency.quantile(0.99) as f64 / 1e3,
            report.version,
            report.swaps,
        );
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (clients, per_client, train_steps, distill_windows) = if smoke {
        (2, 24, 30, 12)
    } else {
        (4, 250, 60, 24)
    };
    let overload_clients = if smoke { 8 } else { 16 };
    let overload_per_client = if smoke { 16 } else { 100 };

    let shards = fleet_demo::default_shards(SHARDS);
    assert!(shards.len() >= 4, "the fleet bench must drive >= 4 shards");
    let registry = Arc::new(ModelRegistry::new());
    fleet_demo::publish_all(&registry, &shards, train_steps, distill_windows);

    let steady = steady_phase(
        &registry,
        &shards,
        clients,
        per_client,
        train_steps,
        distill_windows,
    );
    print_phase("steady", &steady);
    let swap = steady.swap.as_ref().expect("steady phase ran the swap");
    println!(
        "hot swap: v{} published mid-stream for {SWAP_WORKLOAD}, observed on live metrics after {:.1} ms",
        swap.published_version, swap.observed_ms,
    );

    // Hot-swap-under-load contract, asserted in both modes: nothing
    // dropped or shed at steady bounds, exactly one swap on the
    // published shard, and the shard ends on the published version.
    let offered = steady.ok + steady.shed + steady.other;
    assert_eq!(steady.ok, offered, "steady phase must not drop requests");
    assert_eq!(steady.stats.shed(), 0, "steady phase must not shed");
    assert_eq!(steady.other, 0, "no shard may stop mid-run");
    let swap_shard = steady
        .stats
        .shards
        .iter()
        .find(|s| s.workload == SWAP_WORKLOAD)
        .expect("swap shard report");
    assert_eq!(swap_shard.swaps, 1, "exactly one hot swap");
    assert_eq!(swap_shard.swap_failures, 0);
    assert_eq!(swap_shard.version, swap.published_version);
    assert!(
        !swap_shard.table_absent,
        "v2 was published with tables; the shard must not degrade"
    );

    let overload = overload_phase(&registry, &shards, overload_clients, overload_per_client);
    print_phase("overload", &overload);
    let slo_us = 100_000u64;
    let admitted_p99_us_max = overload
        .stats
        .shards
        .iter()
        .map(|s| s.latency.quantile(0.99) / 1_000)
        .max()
        .unwrap_or(0);
    println!(
        "overload: admitted p99 (worst shard) {admitted_p99_us_max} us against a {slo_us} us SLO"
    );
    assert_eq!(overload.other, 0, "no shard may stop under overload");
    if !smoke {
        // Acceptance thresholds are asserted only in full mode; smoke
        // runs on loaded CI machines validate the harness and schema.
        assert!(
            overload.shed > 0,
            "overload phase must shed: {overload_clients} clients against a queue bound of {}",
            fleet_demo::overload_config().max_queue_depth
        );
        assert!(
            admitted_p99_us_max <= slo_us,
            "admitted p99 ({admitted_p99_us_max} us) must stay within the {slo_us} us SLO"
        );
    }

    let json = render_json(
        if smoke { "smoke" } else { "full" },
        &shards,
        &steady,
        &overload,
        slo_us,
    );
    if let Err(e) = voyager_obs::json::validate(&json) {
        eprintln!("generated JSON is malformed: {e}\n{json}");
        std::process::exit(1);
    }
    // Smoke runs (CI) validate the harness without clobbering the
    // committed full-mode measurement at the workspace root.
    let path = if smoke {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_pr8_fleet.smoke.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr8_fleet.json")
    };
    std::fs::write(path, &json).expect("write BENCH_pr8_fleet.json");
    println!("wrote {path}");
}
