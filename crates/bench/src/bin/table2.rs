//! Table 2: benchmark statistics (#PCs, #addresses, #pages).
//!
//! Regenerates the paper's Table 2 for this reproduction's scaled
//! traces. Absolute counts are smaller than the paper's (250M-
//! instruction SimPoints); the orderings the paper highlights — mcf has
//! by far the largest footprint, search/ads have by far the most PCs —
//! are the reproduction target.

use voyager_bench::Scale;
use voyager_trace::gen::Benchmark;
use voyager_trace::stats::TraceStats;

fn main() {
    let scale = Scale::from_env();
    println!("Table 2: benchmark statistics ({:?} scale)", scale);
    println!(
        "{:<12} {:>8} {:>12} {:>8} {:>10}",
        "benchmark", "#PCs", "#addresses", "#pages", "#accesses"
    );
    for b in Benchmark::all() {
        let trace = b.generate(&scale.generator());
        let s = TraceStats::of(&trace);
        println!(
            "{:<12} {:>8} {:>12} {:>8} {:>10}",
            b.name(),
            s.unique_pcs,
            s.unique_addresses,
            s.unique_pages,
            s.accesses
        );
    }
}
