//! Inference fast-path benchmark: tape-based `predict` vs the
//! tape-free f32 fast path vs the quantized int8 fast path, served
//! through the microbatch server. Reports serving p50/p99 latency and
//! throughput per path, heap bytes allocated per direct model call
//! (via a counting global allocator), int8 top-1 agreement on a
//! trained model, and the fast-path arena / int8-GEMM telemetry.
//! Emits `BENCH_pr5_infer.json` at the workspace root.
//!
//! Run `cargo run --release -p voyager-bench --bin pr5_infer` for the
//! full measurement, or with `--smoke` for the fast CI variant (same
//! schema, fewer requests, no latency assertions).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use voyager::{SeqBatch, VoyagerConfig, VoyagerModel};
use voyager_runtime::{
    InferenceRequest, MicrobatchConfig, MicrobatchServer, PredictMode, ServiceConfig,
};
use voyager_tensor::{infer, kernels};

/// System allocator wrapped with a relaxed byte counter, so the bench
/// can report heap bytes allocated per inference call. Only
/// allocations are counted (frees are not subtracted): the metric is
/// allocator traffic, not live footprint.
struct CountingAlloc;

static HEAP_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System`; the only added behavior is a
// relaxed atomic counter bump, which cannot violate the `GlobalAlloc`
// contract (no reentrancy into the allocator, layouts forwarded
// unchanged).
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: delegates to `System` with the caller's layout unchanged;
    // the counter bump is a relaxed atomic and cannot re-enter the
    // allocator.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        HEAP_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: `layout` is the caller's layout, forwarded unchanged.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: pure pass-through; `ptr`/`layout` reach `System` exactly
    // as the caller provided them.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` come from a matching `alloc` call and
        // are forwarded unchanged.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn heap_bytes() -> u64 {
    HEAP_BYTES.load(Ordering::Relaxed)
}

/// Serving-shaped model: the scaled config widened toward the paper's
/// dimensions (256 LSTM units, ~100 k pages) so that the LSTM and
/// page-head GEMMs dominate per-call compute the way they do at paper
/// scale. At these sizes the f32 weights exceed the L2 cache while
/// the int8 copies still fit, which is exactly the regime Section 5.4
/// quantizes for; toy test-config dimensions would instead hide the
/// GEMMs behind the shared embedding/softmax work.
fn serve_config() -> (VoyagerConfig, usize) {
    let mut cfg = VoyagerConfig::scaled();
    cfg.lstm_units = 128;
    (cfg, 8192)
}

fn request(t: usize, seq_len: usize, page_vocab: usize) -> InferenceRequest {
    InferenceRequest {
        workload: Default::default(),
        pc: (0..seq_len).map(|j| (t + j) % 64).collect(),
        page: (0..seq_len).map(|j| (t * 3 + j) % page_vocab).collect(),
        offset: (0..seq_len).map(|j| (t * 5 + j) % 64).collect(),
    }
}

fn mode_name(mode: PredictMode) -> &'static str {
    match mode {
        PredictMode::Tape => "tape",
        PredictMode::FastF32 => "fast_f32",
        PredictMode::FastInt8 => "fast_int8",
        PredictMode::Table => "table",
    }
}

struct PathNumbers {
    path: &'static str,
    requests: usize,
    throughput_rps: f64,
    p50_us: f64,
    p99_us: f64,
    bytes_per_call: f64,
}

/// Closed-loop serving latency: `max_batch = 1` flushes every request
/// immediately, so each batched forward pass computes exactly one
/// request and p50/p99 measure the compute path, identically batched
/// across the three modes.
fn bench_serving(mode: PredictMode, requests: usize) -> PathNumbers {
    let (cfg, page_vocab) = serve_config();
    let model = VoyagerModel::new(&cfg, 64, page_vocab, 64);
    let service = ServiceConfig::new(2)
        .mode(mode)
        .build(model)
        .expect("neural modes need no tables");
    let mb = MicrobatchConfig {
        max_batch: 1,
        max_delay: Duration::from_millis(1),
    };
    let (server, client) = MicrobatchServer::spawn(service, mb);
    let clients = 4;
    std::thread::scope(|scope| {
        for c in 0..clients {
            let client = client.clone();
            let per_client = requests / clients;
            scope.spawn(move || {
                for i in 0..per_client {
                    let t = c * per_client + i;
                    std::hint::black_box(client.infer(request(t, cfg.seq_len, page_vocab)));
                }
            });
        }
    });
    drop(client);
    let stats = server.join();
    PathNumbers {
        path: mode_name(mode),
        requests: stats.requests,
        throughput_rps: stats.throughput(),
        p50_us: stats.latency_quantile(0.5).as_secs_f64() * 1e6,
        p99_us: stats.latency_quantile(0.99).as_secs_f64() * 1e6,
        bytes_per_call: 0.0, // filled in by the caller
    }
}

/// Mean heap bytes allocated per single-request predict call, after a
/// warmup call that grows the fast-path arena.
fn bytes_per_call(mode: PredictMode, iters: usize) -> f64 {
    let (cfg, page_vocab) = serve_config();
    let mut model = VoyagerModel::new(&cfg, 64, page_vocab, 64);
    if mode == PredictMode::FastInt8 {
        model.prepare_int8();
    }
    let batch = SeqBatch {
        pc: vec![(0..cfg.seq_len).map(|j| j % 64).collect()],
        page: vec![(0..cfg.seq_len).map(|j| (j * 3) % page_vocab).collect()],
        offset: vec![(0..cfg.seq_len).map(|j| (j * 5) % 64).collect()],
    };
    let run = |m: &mut VoyagerModel| match mode {
        PredictMode::Tape => std::hint::black_box(m.predict(&batch, 2)),
        PredictMode::FastF32 => std::hint::black_box(m.predict_fast(&batch, 2)),
        PredictMode::FastInt8 => std::hint::black_box(m.predict_int8(&batch, 2)),
        // pr5 predates the distilled tables; pr6_table covers them.
        PredictMode::Table => unreachable!("pr5_infer does not bench table mode"),
    };
    run(&mut model); // warmup: arena growth happens here
    let before = heap_bytes();
    for _ in 0..iters {
        run(&mut model);
    }
    (heap_bytes() - before) as f64 / iters as f64
}

/// Trains the small fixed mapping from the core fast-path tests to
/// convergence and returns the f32-vs-int8 top-1 (page, offset)
/// agreement over a 128-row evaluation batch.
fn int8_agreement() -> f64 {
    let cfg = VoyagerConfig::test();
    let mut model = VoyagerModel::new(&cfg, 16, 8, 64);
    let patterns = SeqBatch {
        pc: vec![vec![1; 4], vec![2; 4], vec![3; 4], vec![4; 4]],
        page: vec![vec![3; 4], vec![5; 4], vec![7; 4], vec![1; 4]],
        offset: vec![vec![10; 4], vec![20; 4], vec![30; 4], vec![40; 4]],
    };
    let pages: [usize; 4] = [6, 7, 2, 4];
    let offsets: [usize; 4] = [30, 40, 50, 60];
    for _ in 0..150 {
        model.train_single(&patterns, &pages, &offsets);
    }
    let rows = 128;
    let eval = SeqBatch {
        pc: (0..rows).map(|i| patterns.pc[i % 4].clone()).collect(),
        page: (0..rows).map(|i| patterns.page[i % 4].clone()).collect(),
        offset: (0..rows).map(|i| patterns.offset[i % 4].clone()).collect(),
    };
    model.prepare_int8();
    let f = model.predict_fast(&eval, 1);
    let q = model.predict_int8(&eval, 1);
    let agree = f
        .iter()
        .zip(&q)
        .filter(|(a, b)| (a[0].0, a[0].1) == (b[0].0, b[0].1))
        .count();
    agree as f64 / rows as f64
}

fn fmt_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.0".to_string()
    }
}

#[allow(clippy::too_many_arguments)]
fn render_json(mode: &str, paths: &[PathNumbers], agreement: f64) -> String {
    let p50 = |name: &str| {
        paths
            .iter()
            .find(|p| p.path == name)
            .map(|p| p.p50_us)
            .unwrap_or(0.0)
    };
    let tape = p50("tape");
    let fast = p50("fast_f32");
    let int8 = p50("fast_int8");
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"pr5_infer\",\n");
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str(&format!(
        "  \"dispatch\": \"{}\",\n",
        kernels::active_isa().name()
    ));
    s.push_str("  \"serve\": [\n");
    for (i, p) in paths.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"path\": \"{}\", \"requests\": {}, \"throughput_rps\": {}, \"p50_us\": {}, \"p99_us\": {}, \"bytes_per_call\": {}}}{}\n",
            p.path,
            p.requests,
            fmt_f(p.throughput_rps),
            fmt_f(p.p50_us),
            fmt_f(p.p99_us),
            fmt_f(p.bytes_per_call),
            if i + 1 < paths.len() { "," } else { "" },
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"fast_f32_speedup_p50\": {},\n",
        fmt_f(if fast > 0.0 { tape / fast } else { 0.0 })
    ));
    s.push_str(&format!(
        "  \"int8_vs_f32_p50\": {},\n",
        fmt_f(if fast > 0.0 { int8 / fast } else { 0.0 })
    ));
    s.push_str(&format!(
        "  \"int8_top1_agreement\": {},\n",
        fmt_f(agreement)
    ));
    s.push_str(&format!(
        "  \"arena\": {{\"grow_events\": {}, \"grown_bytes\": {}, \"fast_path_calls\": {}}},\n",
        infer::arena_grow_events(),
        infer::arena_grown_bytes(),
        infer::fast_path_calls(),
    ));
    s.push_str(&format!(
        "  \"int8_gemm\": {{\"invocations\": {}, \"ops\": {}}}\n",
        kernels::int8_gemm_invocations(),
        kernels::int8_gemm_ops(),
    ));
    s.push_str("}\n");
    s
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (requests, alloc_iters) = if smoke { (64, 8) } else { (2048, 64) };

    let agreement = int8_agreement();
    println!("int8 top-1 agreement: {agreement:.4}");
    assert!(
        agreement >= 0.99,
        "int8 top-1 agreement {agreement} below the paper's <1% degradation claim"
    );

    let mut paths = Vec::new();
    for mode in [
        PredictMode::Tape,
        PredictMode::FastF32,
        PredictMode::FastInt8,
    ] {
        let mut numbers = bench_serving(mode, requests);
        numbers.bytes_per_call = bytes_per_call(mode, alloc_iters);
        println!(
            "serve/{}: {} requests, {:.0} rps, p50 {:.0} us, p99 {:.0} us, {:.0} bytes/call",
            numbers.path,
            numbers.requests,
            numbers.throughput_rps,
            numbers.p50_us,
            numbers.p99_us,
            numbers.bytes_per_call,
        );
        paths.push(numbers);
    }

    let tape_p50 = paths[0].p50_us;
    let fast_p50 = paths[1].p50_us;
    let int8_p50 = paths[2].p50_us;
    println!(
        "fast_f32 speedup over tape (p50): {:.2}x; int8/f32 p50 ratio: {:.2}",
        tape_p50 / fast_p50,
        int8_p50 / fast_p50
    );
    if !smoke {
        // Acceptance thresholds are asserted only in full mode; smoke
        // runs on loaded CI machines validate the harness and schema.
        assert!(
            fast_p50 * 2.0 <= tape_p50,
            "fast-f32 serve p50 ({fast_p50:.0} us) must be at least 2x better than tape ({tape_p50:.0} us)"
        );
        assert!(
            int8_p50 <= fast_p50 * 1.05,
            "int8 serve p50 ({int8_p50:.0} us) must be at least as fast as fast-f32 ({fast_p50:.0} us)"
        );
    }

    let json = render_json(if smoke { "smoke" } else { "full" }, &paths, agreement);
    if let Err(e) = voyager_obs::json::validate(&json) {
        eprintln!("generated JSON is malformed: {e}\n{json}");
        std::process::exit(1);
    }
    // Smoke runs (CI) validate the harness without clobbering the
    // committed full-mode measurement at the workspace root.
    let path = if smoke {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_pr5_infer.smoke.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr5_infer.json")
    };
    std::fs::write(path, &json).expect("write BENCH_pr5_infer.json");
    println!("wrote {path}");
}
