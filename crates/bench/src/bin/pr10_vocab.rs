//! Vocabulary-scaling benchmark for the hierarchical page head
//! (Section 5.5): trains dense and hierarchical models over Zipf page
//! streams at 1×/10×/100× the base page vocabulary and measures the
//! training step time of each cell, int8 serving latency of the
//! hier-100× model against the dense-1× baseline, and dense-vs-hier
//! top-1 agreement at small vocabulary. Emits `BENCH_pr10_vocab.json`
//! at the workspace root.
//!
//! Run `cargo run --release -p voyager-bench --bin pr10_vocab` for the
//! full measurement, or with `--smoke` for the fast CI variant (same
//! schema, fewer steps/requests, no perf assertions).

use std::time::{Duration, Instant};

use voyager::{hier_shape, OutputHead, SeqBatch, VoyagerConfig, VoyagerModel};
use voyager_runtime::{
    InferenceRequest, MicrobatchConfig, MicrobatchServer, PredictMode, ServiceConfig,
};
use voyager_tensor::rng::{Rng, SeedableRng, StdRng};
use voyager_tensor::{infer, kernels, simd};
use voyager_trace::gen::ZipfSampler;

/// Base page vocabulary (1×). 100× is 409 600 pages — a 1600×256 grid
/// for the hierarchical head, and the cell the dense head cannot
/// afford (`O(V)` logits, multi-hot targets and head gradients per
/// step: ~100 MB of traffic before the optimizer runs).
const BASE_VOCAB: usize = 4_096;
const BATCH: usize = 16;

fn bench_config(head: OutputHead) -> VoyagerConfig {
    let mut cfg = VoyagerConfig::scaled().with_output_head(head);
    // Paper-shaped trunk: wide enough that the head, not the
    // embeddings, is what vocabulary scaling stresses.
    cfg.lstm_units = 64;
    cfg.dropout_keep = 1.0;
    cfg
}

/// Zipf-distributed training batch over a `vocab`-page stream: input
/// pages and positive labels both follow the popularity distribution,
/// like the OLTP key skew the paper cites.
fn zipf_batch(
    zipf: &ZipfSampler,
    rng: &mut StdRng,
    seq_len: usize,
) -> (SeqBatch, Vec<Vec<usize>>, Vec<usize>) {
    let batch = SeqBatch {
        pc: (0..BATCH)
            .map(|_| (0..seq_len).map(|_| rng.gen_range(0..64usize)).collect())
            .collect(),
        page: (0..BATCH)
            .map(|_| (0..seq_len).map(|_| zipf.sample(rng)).collect())
            .collect(),
        offset: (0..BATCH)
            .map(|_| (0..seq_len).map(|_| rng.gen_range(0..64usize)).collect())
            .collect(),
    };
    let positives: Vec<Vec<usize>> = (0..BATCH)
        .map(|i| {
            let mut p: Vec<usize> = (0..1 + i % 2).map(|_| zipf.sample(rng)).collect();
            p.sort_unstable();
            p.dedup();
            p
        })
        .collect();
    let offsets: Vec<usize> = (0..BATCH).map(|_| rng.gen_range(0..64usize)).collect();
    (batch, positives, offsets)
}

struct StepCell {
    head: &'static str,
    mult: usize,
    vocab: usize,
    step_ms: f64,
}

/// Mean training-step wall time for one (head, vocab) cell:
/// `train_multi_sparse` over Zipf batches, after one warmup step. The
/// dense head pays its `O(V)` multi-hot and logits inside the step,
/// the hierarchical head only `O(clusters + positives * branch)`.
fn bench_step(head: OutputHead, mult: usize, steps: usize) -> StepCell {
    let vocab = BASE_VOCAB * mult;
    let cfg = bench_config(head);
    let mut model = VoyagerModel::new(&cfg, 64, vocab, 64);
    let zipf = ZipfSampler::new(vocab, 0.9);
    let mut rng = StdRng::seed_from_u64(0x10_0000 + mult as u64);
    let mut ot = voyager_tensor::Tensor2::zeros(BATCH, 64);
    let (b0, p0, o0) = zipf_batch(&zipf, &mut rng, cfg.seq_len);
    set_offsets(&mut ot, &o0);
    model.train_multi_sparse(&b0, &p0, &ot); // warmup (arena + caches)
    let start = Instant::now();
    for _ in 0..steps {
        let (b, p, o) = zipf_batch(&zipf, &mut rng, cfg.seq_len);
        set_offsets(&mut ot, &o);
        std::hint::black_box(model.train_multi_sparse(&b, &p, &ot));
    }
    StepCell {
        head: head_name(head),
        mult,
        vocab,
        step_ms: start.elapsed().as_secs_f64() * 1e3 / steps as f64,
    }
}

fn set_offsets(ot: &mut voyager_tensor::Tensor2, offsets: &[usize]) {
    ot.as_mut_slice().fill(0.0);
    for (i, &o) in offsets.iter().enumerate() {
        ot.set(i, o, 1.0);
    }
}

fn head_name(head: OutputHead) -> &'static str {
    match head {
        OutputHead::Dense => "dense",
        OutputHead::Hier => "hier",
    }
}

/// Closed-loop int8 serving p50 for one (head, vocab) cell, through
/// the microbatch server with `max_batch = 1` (pure compute path,
/// identical batching across cells).
fn bench_serve_int8(head: OutputHead, mult: usize, requests: usize) -> f64 {
    let vocab = BASE_VOCAB * mult;
    let cfg = bench_config(head);
    let model = VoyagerModel::new(&cfg, 64, vocab, 64);
    let service = ServiceConfig::new(2)
        .mode(PredictMode::FastInt8)
        .build(model)
        .expect("neural modes need no tables");
    let mb = MicrobatchConfig {
        max_batch: 1,
        max_delay: Duration::from_millis(1),
    };
    let (server, client) = MicrobatchServer::spawn(service, mb);
    let clients = 4;
    std::thread::scope(|scope| {
        for c in 0..clients {
            let client = client.clone();
            let per_client = requests / clients;
            scope.spawn(move || {
                for i in 0..per_client {
                    let t = c * per_client + i;
                    let req = InferenceRequest {
                        workload: Default::default(),
                        pc: (0..cfg.seq_len).map(|j| (t + j) % 64).collect(),
                        page: (0..cfg.seq_len).map(|j| (t * 3 + j) % vocab).collect(),
                        offset: (0..cfg.seq_len).map(|j| (t * 5 + j) % 64).collect(),
                    };
                    std::hint::black_box(client.infer(req));
                }
            });
        }
    });
    drop(client);
    let stats = server.join();
    stats.latency_quantile(0.5).as_secs_f64() * 1e6
}

/// Dense-vs-hier top-1 (page, offset) agreement after training both
/// heads to convergence on the same small-vocabulary stream.
fn head_agreement() -> f64 {
    let dense_cfg = VoyagerConfig::test();
    let hier_cfg = VoyagerConfig::test().with_output_head(OutputHead::Hier);
    let mut d = VoyagerModel::new(&dense_cfg, 16, 21, 64);
    let mut h = VoyagerModel::new(&hier_cfg, 16, 21, 64);
    let patterns = SeqBatch {
        pc: vec![vec![1; 4], vec![2; 4], vec![3; 4], vec![4; 4]],
        page: vec![vec![3; 4], vec![5; 4], vec![7; 4], vec![1; 4]],
        offset: vec![vec![10; 4], vec![20; 4], vec![30; 4], vec![40; 4]],
    };
    let pos: Vec<Vec<usize>> = vec![vec![6], vec![20], vec![2], vec![14]];
    let mut ot = voyager_tensor::Tensor2::zeros(4, 64);
    for (i, &o) in [30usize, 40, 50, 60].iter().enumerate() {
        ot.set(i, o, 1.0);
    }
    for _ in 0..500 {
        d.train_multi_sparse(&patterns, &pos, &ot);
        h.train_multi_sparse(&patterns, &pos, &ot);
    }
    let rows = 128;
    let eval = SeqBatch {
        pc: (0..rows).map(|i| patterns.pc[i % 4].clone()).collect(),
        page: (0..rows).map(|i| patterns.page[i % 4].clone()).collect(),
        offset: (0..rows).map(|i| patterns.offset[i % 4].clone()).collect(),
    };
    let dp = d.predict_fast(&eval, 1);
    let hp = h.predict_fast(&eval, 1);
    let agree = dp
        .iter()
        .zip(&hp)
        .filter(|(a, b)| (a[0].0, a[0].1) == (b[0].0, b[0].1))
        .count();
    agree as f64 / rows as f64
}

fn fmt_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.0".to_string()
    }
}

fn render_json(
    mode: &str,
    cells: &[StepCell],
    step_ratio: f64,
    dense_p50: f64,
    hier_p50: f64,
    agreement: f64,
) -> String {
    let (clusters, branch) = hier_shape(BASE_VOCAB * 100);
    let (hits, misses) = simd::packed_b_cache_stats();
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"pr10_vocab\",\n");
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str(&format!(
        "  \"dispatch\": \"{}\",\n",
        kernels::active_isa().name()
    ));
    s.push_str(&format!("  \"base_vocab\": {BASE_VOCAB},\n"));
    s.push_str(&format!(
        "  \"hier_100x_grid\": {{\"clusters\": {clusters}, \"branch\": {branch}}},\n"
    ));
    s.push_str("  \"train_steps\": [\n");
    for (i, c) in cells.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"head\": \"{}\", \"vocab_mult\": {}, \"vocab\": {}, \"step_ms\": {}}}{}\n",
            c.head,
            c.mult,
            c.vocab,
            fmt_f(c.step_ms),
            if i + 1 < cells.len() { "," } else { "" },
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"dense_100x\": \"skipped: O(V) multi-hot targets and head gradients\",\n");
    s.push_str(&format!(
        "  \"hier100x_vs_dense1x_step_ratio\": {},\n",
        fmt_f(step_ratio)
    ));
    s.push_str(&format!(
        "  \"serve_int8\": {{\"dense_1x_p50_us\": {}, \"hier_100x_p50_us\": {}, \"ratio\": {}}},\n",
        fmt_f(dense_p50),
        fmt_f(hier_p50),
        fmt_f(if dense_p50 > 0.0 {
            hier_p50 / dense_p50
        } else {
            0.0
        })
    ));
    s.push_str(&format!(
        "  \"dense_hier_top1_agreement\": {},\n",
        fmt_f(agreement)
    ));
    s.push_str(&format!(
        "  \"packed_b_cache\": {{\"hits\": {hits}, \"misses\": {misses}}},\n"
    ));
    s.push_str(&format!(
        "  \"arena\": {{\"grow_events\": {}, \"grown_bytes\": {}, \"fast_path_calls\": {}}}\n",
        infer::arena_grow_events(),
        infer::arena_grown_bytes(),
        infer::fast_path_calls(),
    ));
    s.push_str("}\n");
    s
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (steps, requests) = if smoke { (2, 32) } else { (8, 512) };

    let agreement = head_agreement();
    println!("dense-vs-hier top-1 agreement: {agreement:.4}");

    // Training-step sweep. The dense 100× cell is skipped by design:
    // its O(V) per-step cost (multi-hot targets, logits, head
    // gradients, Adam moments over a [64, 409600] head) is the problem
    // the hierarchical head removes — that asymmetry IS the result.
    let mut cells = Vec::new();
    for (head, mults) in [
        (OutputHead::Dense, &[1usize, 10][..]),
        (OutputHead::Hier, &[1usize, 10, 100][..]),
    ] {
        for &mult in mults {
            let cell = bench_step(head, mult, steps);
            println!(
                "train/{}-{}x (V={}): {:.2} ms/step",
                cell.head, cell.mult, cell.vocab, cell.step_ms
            );
            cells.push(cell);
        }
    }
    println!("train/dense-100x: skipped (O(V) step cost is the dense head's scaling wall)");

    let dense_1x = cells[0].step_ms;
    let hier_100x = cells.last().expect("cells populated").step_ms;
    let step_ratio = hier_100x / dense_1x;
    println!("hier-100x / dense-1x step time: {step_ratio:.2}x");

    let dense_p50 = bench_serve_int8(OutputHead::Dense, 1, requests);
    let hier_p50 = bench_serve_int8(OutputHead::Hier, 100, requests);
    println!(
        "serve int8 p50: dense-1x {dense_p50:.0} us, hier-100x {hier_p50:.0} us ({:.2}x)",
        hier_p50 / dense_p50
    );

    if !smoke {
        // Acceptance gates are asserted only in full mode; smoke runs
        // on loaded CI machines validate the harness and schema.
        assert!(
            agreement >= 0.99,
            "dense-vs-hier top-1 agreement {agreement} below 99%"
        );
        assert!(
            step_ratio <= 1.5,
            "hier-100x step time must stay within 1.5x of dense-1x, got {step_ratio:.2}x"
        );
        assert!(
            hier_p50 <= dense_p50 * 2.0,
            "hier-100x int8 serve p50 ({hier_p50:.0} us) exceeds 2x dense-1x ({dense_p50:.0} us)"
        );
    }

    let json = render_json(
        if smoke { "smoke" } else { "full" },
        &cells,
        step_ratio,
        dense_p50,
        hier_p50,
        agreement,
    );
    if let Err(e) = voyager_obs::json::validate(&json) {
        eprintln!("generated JSON is malformed: {e}\n{json}");
        std::process::exit(1);
    }
    // Smoke runs (CI) validate the harness without clobbering the
    // committed full-mode measurement at the workspace root.
    let path = if smoke {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_pr10_vocab.smoke.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr10_vocab.json")
    };
    std::fs::write(path, &json).expect("write BENCH_pr10_vocab.json");
    println!("wrote {path}");
}
