//! Figures 5, 6, and 8: prefetch accuracy, coverage and IPC through the
//! simulator, for the nine SPEC/GAP benchmarks.
//!
//! Paper results (averages, degree 1): accuracy — Voyager 90.2% vs
//! 81.6% best prior; coverage — Voyager 65.7% vs 47.2%; IPC uplift over
//! no prefetching — Voyager +41.6%, ISB +28.2%, Domino +21.7%, STMS
//! +14.9%, BO +13.3%, Delta-LSTM +24.6%. The reproduction target is the
//! ordering and rough factors.

use voyager_bench::{prepare, sim_comparison, Scale};
use voyager_trace::gen::Benchmark;

fn main() {
    let scale = Scale::from_env();
    let mut comparisons = Vec::new();
    for b in Benchmark::spec_gap() {
        eprintln!("[fig5/6/8] {b} ...");
        let w = prepare(b, scale);
        comparisons.push(sim_comparison(&w, 1, true));
    }
    let columns: Vec<&str> = comparisons[0]
        .results
        .iter()
        .map(|(n, _)| n.as_str())
        .collect();

    let acc_rows: Vec<(String, Vec<f64>)> = comparisons
        .iter()
        .map(|c| {
            (
                c.benchmark.clone(),
                c.results
                    .iter()
                    // Prefetchers that issued nothing have no accuracy;
                    // render those cells as 0 in the table.
                    .map(|(_, o)| o.accuracy().unwrap_or(0.0))
                    .collect(),
            )
        })
        .collect();
    voyager_bench::print_table("Figure 5: prefetch accuracy", &columns, &acc_rows);

    let cov_rows: Vec<(String, Vec<f64>)> = comparisons
        .iter()
        .map(|c| {
            (
                c.benchmark.clone(),
                c.results
                    .iter()
                    .map(|(_, o)| o.coverage_vs(&c.baseline).unwrap_or(0.0))
                    .collect(),
            )
        })
        .collect();
    voyager_bench::print_table("Figure 6: prefetch coverage", &columns, &cov_rows);

    let ipc_rows: Vec<(String, Vec<f64>)> = comparisons
        .iter()
        .map(|c| {
            (
                c.benchmark.clone(),
                c.results
                    .iter()
                    .map(|(_, o)| o.speedup_vs(&c.baseline))
                    .collect(),
            )
        })
        .collect();
    voyager_bench::print_table(
        "Figure 8: IPC normalized to no prefetching",
        &columns,
        &ipc_rows,
    );

    println!("\npaper IPC means: stms 1.149, domino 1.217, isb 1.282, bo 1.133, delta-lstm 1.246, voyager 1.416");
}
