//! Section 4.2 ablation: the page-aware offset embedding versus the
//! naive page/offset decomposition.
//!
//! The naive split (Section 4.2.1) shares one offset embedding across
//! all pages, so addresses with equal offsets but different pages alias
//! and "pull the shared offset embedding towards different answers".
//! The attention mechanism (Section 4.2.2) resolves this. This binary
//! trains both variants (profile-driven protocol) and compares their
//! unified accuracy/coverage, along with parameter counts.

use voyager::{OnlineRun, VoyagerConfig};
use voyager_bench::{prepare, Scale, UNIFIED_WINDOW};
use voyager_trace::gen::Benchmark;

const SUBSET: [Benchmark; 3] = [Benchmark::Pr, Benchmark::Mcf, Benchmark::Xalancbmk];

fn main() {
    let scale = Scale::from_env();
    let mut base = VoyagerConfig::scaled();
    base.train_passes = 10;
    let mut rows = Vec::new();
    let mut sizes = (0usize, 0usize);
    for b in SUBSET {
        eprintln!("[aliasing] {b} ...");
        let w = prepare(b, scale);
        let with = OnlineRun::execute_profiled(&w.stream, &base);
        let naive = OnlineRun::execute_profiled(&w.stream, &base.without_attention());
        sizes = (with.model_params, naive.model_params);
        rows.push((
            b.name().to_string(),
            vec![
                with.unified_score_windowed(&w.stream, UNIFIED_WINDOW)
                    .value(),
                naive
                    .unified_score_windowed(&w.stream, UNIFIED_WINDOW)
                    .value(),
            ],
        ));
    }
    voyager_bench::print_table(
        "Offset-aliasing ablation (unified acc/cov, window 10)",
        &["page-aware", "naive-split"],
        &rows,
    );
    println!(
        "\nmodel params: page-aware {} vs naive {} (the attention variant spends its extra\nparameters on {} offset-embedding experts)",
        sizes.0,
        sizes.1,
        base.experts
    );
}
