//! Figures 10 and 11: breakdown of covered and uncovered access
//! patterns for ISB (Fig. 10) and "Voyager w/o delta" (Fig. 11).
//!
//! Paper result: relative to ISB, Voyager-without-deltas improves
//! spatial-pattern coverage from 45.2% to 56.8% and non-spatial from
//! 13.1% to 22.2%, shrinking every uncovered category except
//! compulsory misses (which need the delta vocabulary, see the
//! `mcf_delta` experiment).
//!
//! Categories (per Section 5.3.1): a target access is *spatial* when a
//! recent access was within 256 cache lines; *co-occurrence* when its
//! (previous line -> line) pair recurs in the stream; *compulsory* on
//! the first touch of a line; *other* otherwise. A target is covered
//! when a prediction issued in the preceding window names its line.

use std::collections::{HashMap, HashSet};

use voyager::OnlineRun;
use voyager::VoyagerConfig;
use voyager_bench::{baseline_predictions, mean, prepare, Scale, UNIFIED_WINDOW};
use voyager_prefetch::Isb;
use voyager_trace::gen::Benchmark;
use voyager_trace::Trace;

const SPATIAL_LINES: u64 = 256;

#[derive(Debug, Default, Clone, Copy)]
struct Breakdown {
    covered_spatial: f64,
    covered_nonspatial: f64,
    uncovered_spatial: f64,
    uncovered_cooc: f64,
    uncovered_other: f64,
    uncovered_compulsory: f64,
}

fn classify(stream: &Trace, predictions: &[Vec<u64>]) -> Breakdown {
    let n = stream.len();
    let mut pair_count: HashMap<(u64, u64), u32> = HashMap::new();
    for w in stream.as_slice().windows(2) {
        *pair_count.entry((w[0].line(), w[1].line())).or_default() += 1;
    }
    let mut seen = HashSet::new();
    seen.insert(stream[0].line());
    let mut b = Breakdown::default();
    let mut total = 0.0f64;
    for t in 1..n {
        let line = stream[t].line();
        let compulsory = seen.insert(line);
        let spatial = (t.saturating_sub(UNIFIED_WINDOW)..t)
            .any(|j| stream[j].line().abs_diff(line) <= SPATIAL_LINES);
        let covered = (t.saturating_sub(UNIFIED_WINDOW)..t).any(|j| predictions[j].contains(&line));
        total += 1.0;
        if covered {
            if spatial {
                b.covered_spatial += 1.0;
            } else {
                b.covered_nonspatial += 1.0;
            }
        } else if compulsory {
            b.uncovered_compulsory += 1.0;
        } else if spatial {
            b.uncovered_spatial += 1.0;
        } else if pair_count[&(stream[t - 1].line(), line)] >= 2 {
            b.uncovered_cooc += 1.0;
        } else {
            b.uncovered_other += 1.0;
        }
    }
    for v in [
        &mut b.covered_spatial,
        &mut b.covered_nonspatial,
        &mut b.uncovered_spatial,
        &mut b.uncovered_cooc,
        &mut b.uncovered_other,
        &mut b.uncovered_compulsory,
    ] {
        *v /= total.max(1.0);
    }
    b
}

fn main() {
    let scale = Scale::from_env();
    let columns = [
        "cov-spatial",
        "cov-nonspat",
        "unc-spatial",
        "unc-cooc",
        "unc-other",
        "unc-compuls",
    ];
    let mut isb_rows = Vec::new();
    let mut voy_rows = Vec::new();
    for b in Benchmark::spec_gap() {
        eprintln!("[fig10/11] {b} ...");
        let w = prepare(b, scale);
        let isb_preds = baseline_predictions(&w.stream, &mut Isb::new());
        let ib = classify(&w.stream, &isb_preds);
        isb_rows.push((
            b.name().to_string(),
            vec![
                ib.covered_spatial,
                ib.covered_nonspatial,
                ib.uncovered_spatial,
                ib.uncovered_cooc,
                ib.uncovered_other,
                ib.uncovered_compulsory,
            ],
        ));
        // Voyager without the delta vocabulary (Section 5.3.1).
        let mut cfg = VoyagerConfig::scaled().without_deltas();
        cfg.train_passes = 10;
        let run = OnlineRun::execute_profiled(&w.stream, &cfg);
        let vb = classify(&w.stream, &run.predictions);
        voy_rows.push((
            b.name().to_string(),
            vec![
                vb.covered_spatial,
                vb.covered_nonspatial,
                vb.uncovered_spatial,
                vb.uncovered_cooc,
                vb.uncovered_other,
                vb.uncovered_compulsory,
            ],
        ));
    }
    voyager_bench::print_table("Figure 10: ISB pattern breakdown", &columns, &isb_rows);
    voyager_bench::print_table(
        "Figure 11: Voyager w/o delta pattern breakdown",
        &columns,
        &voy_rows,
    );
    let isb_cov: Vec<f64> = isb_rows.iter().map(|(_, v)| v[0] + v[1]).collect();
    let voy_cov: Vec<f64> = voy_rows.iter().map(|(_, v)| v[0] + v[1]).collect();
    println!(
        "\nmean coverage: isb {:.3}, voyager w/o delta {:.3} (paper: +19.4% for Voyager w/o delta)",
        mean(&isb_cov),
        mean(&voy_cov)
    );
}
