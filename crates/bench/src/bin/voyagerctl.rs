//! `voyagerctl` — command-line front end for the Voyager reproduction.
//!
//! ```text
//! voyagerctl gen <benchmark> <out.vtrc> [accesses] [seed]
//!     Generate a workload trace and save it in the binary format.
//! voyagerctl stats <benchmark|trace.vtrc>
//!     Print Table 2-style statistics.
//! voyagerctl filter <in.vtrc> <out.vtrc>
//!     Filter a raw trace to its LLC access stream (scaled hierarchy).
//! voyagerctl run <benchmark|trace.vtrc> <prefetcher> [degree]
//!     Evaluate a prefetcher (stms|domino|isb|bo|stride|markov|vldp|
//!     sms|next-line|isb+bo|isb-structural|voyager|voyager-prof|delta-lstm) with the
//!     unified metric and, for generated benchmarks, the simulator.
//! voyagerctl simpoints <benchmark|trace.vtrc> [interval] [k]
//!     SimPoint phase analysis.
//! voyagerctl train <benchmark|trace.vtrc> [--workers N] [--steps S]
//!                  [--passes P] [--config test|scaled]
//!                  [--checkpoint-dir DIR]
//!     Data-parallel training over N worker threads. Per-step losses
//!     are bitwise-identical for any N at a fixed seed; only the
//!     wall-clock changes.
//! voyagerctl serve-bench <benchmark|trace.vtrc> [--requests N]
//!                        [--clients C] [--max-batch B]
//!                        [--max-delay-us U] [--degree D]
//!                        [--config test|scaled]
//!                        [--mode tape|fast|int8|table]
//!     Drive the microbatched inference server with C client threads
//!     and print throughput plus p50/p99 latency. `--mode fast` serves
//!     through the tape-free f32 engine, `--mode int8` through the
//!     quantized one, `--mode table` through distilled lookup tables
//!     (built from the stream's own windows; misses fall back to
//!     int8); `tape` (default) is the reference path.
//! voyagerctl fleet-bench [--shards N] [--clients C] [--requests R]
//!                        [--depth D] [--slo-us S] [--train-steps T]
//!     Spawn an N-shard multi-tenant fleet (shards cycle through the
//!     table/int8/f32 serving tiers) over a versioned model registry,
//!     drive it with C closed-loop clients per shard for R requests
//!     each, hot-swap shard w0 to a freshly published v2 mid-run, and
//!     print per-shard admitted/shed counts and p50/p99 latency.
//!     `--depth` bounds each shard's queue and `--slo-us` sets the
//!     admission-control latency objective — shrink them to watch the
//!     fleet shed load instead of queueing without bound.
//! voyagerctl metrics [--smoke] [--serve-mode int8|table]
//!     Run a short sim + train + serve pipeline with the voyager-obs
//!     observability layer enabled and dump the full metrics snapshot
//!     (counters, histograms, span tree) as validated JSON on stdout.
//!     `--smoke` shrinks the workload for CI. `--serve-mode table`
//!     (the default) serves through distilled tables built from half
//!     the request windows, so the `infer.table.*` counters observe
//!     both hits and int8 fallbacks; `--serve-mode int8` restores the
//!     pure quantized path.
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;
use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use voyager::{
    DeltaLstm, DeltaLstmConfig, OnlineRun, SeqBatch, TrainingSet, VoyagerConfig, VoyagerModel,
};
use voyager_bench::fleet_demo;
use voyager_obs::{Profiler, Registry};
use voyager_prefetch::{
    BestOffset, Domino, Isb, IsbBoHybrid, IsbStructural, Markov, NextLine, Prefetcher, Sms, Stms,
    StridePc, Vldp,
};
use voyager_runtime::{
    train_data_parallel, train_data_parallel_profiled, CheckpointManager, FleetConfig, FleetError,
    FleetServer, InferenceRequest, MicrobatchConfig, MicrobatchServer, ModelRegistry, PredictMode,
    ServiceConfig, TrainerConfig,
};
use voyager_sim::{llc_stream, unified_accuracy_coverage_windowed, SimConfig};
use voyager_trace::gen::{Benchmark, GeneratorConfig};
use voyager_trace::serialize::{read_trace, write_trace};
use voyager_trace::simpoint::simpoints;
use voyager_trace::stats::TraceStats;
use voyager_trace::Trace;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("filter") => cmd_filter(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("simpoints") => cmd_simpoints(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("serve-bench") => cmd_serve_bench(&args[1..]),
        Some("fleet-bench") => cmd_fleet_bench(&args[1..]),
        Some("metrics") => cmd_metrics(&args[1..]),
        _ => {
            eprintln!("usage: voyagerctl <gen|stats|filter|run|simpoints|train|serve-bench|fleet-bench|metrics> ... (see --help in the module docs)");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// Loads a trace from a benchmark name or a `.vtrc` file.
fn load(source: &str) -> Result<Trace, Box<dyn std::error::Error>> {
    if source.ends_with(".vtrc") {
        Ok(read_trace(BufReader::new(File::open(source)?))?)
    } else {
        let benchmark = Benchmark::from_str(source)?;
        Ok(benchmark.generate(&GeneratorConfig::medium()))
    }
}

fn cmd_gen(args: &[String]) -> CliResult {
    let [benchmark, out, rest @ ..] = args else {
        return Err("usage: gen <benchmark> <out.vtrc> [accesses] [seed]".into());
    };
    let benchmark = Benchmark::from_str(benchmark)?;
    let mut cfg = GeneratorConfig::medium();
    if let Some(a) = rest.first() {
        cfg = cfg.with_accesses(a.parse()?);
    }
    if let Some(s) = rest.get(1) {
        cfg = cfg.with_seed(s.parse()?);
    }
    let trace = benchmark.generate(&cfg);
    write_trace(BufWriter::new(File::create(out)?), &trace)?;
    println!("wrote {trace} to {out}");
    Ok(())
}

fn cmd_stats(args: &[String]) -> CliResult {
    let [source] = args else {
        return Err("usage: stats <benchmark|trace.vtrc>".into());
    };
    let trace = load(source)?;
    println!("{trace}: {}", TraceStats::of(&trace));
    Ok(())
}

fn cmd_filter(args: &[String]) -> CliResult {
    let [input, out] = args else {
        return Err("usage: filter <in.vtrc> <out.vtrc>".into());
    };
    let trace = load(input)?;
    let stream = llc_stream(&trace, &SimConfig::scaled());
    println!("{} -> {} LLC accesses", trace, stream.len());
    write_trace(BufWriter::new(File::create(out)?), &stream)?;
    Ok(())
}

fn cmd_run(args: &[String]) -> CliResult {
    let [source, prefetcher, rest @ ..] = args else {
        return Err("usage: run <benchmark|trace.vtrc> <prefetcher> [degree]".into());
    };
    let degree: usize = rest.first().map(|d| d.parse()).transpose()?.unwrap_or(1);
    let trace = load(source)?;
    let stream = llc_stream(&trace, &SimConfig::scaled());
    let predictions: Vec<Vec<u64>> = match prefetcher.as_str() {
        "voyager" => {
            OnlineRun::execute(&stream, &VoyagerConfig::scaled().with_degree(degree)).predictions
        }
        "voyager-prof" => {
            let mut cfg = VoyagerConfig::scaled().with_degree(degree);
            cfg.train_passes = 10;
            OnlineRun::execute_profiled(&stream, &cfg).predictions
        }
        "delta-lstm" => {
            DeltaLstm::run_online(&stream, &DeltaLstmConfig::scaled().with_degree(degree))
                .predictions
        }
        name => {
            let mut p: Box<dyn Prefetcher> = match name {
                "stms" => Box::new(Stms::new()),
                "domino" => Box::new(Domino::new()),
                "isb" => Box::new(Isb::new()),
                "isb-structural" => Box::new(IsbStructural::new()),
                "bo" => Box::new(BestOffset::new()),
                "stride" => Box::new(StridePc::new()),
                "markov" => Box::new(Markov::new()),
                "vldp" => Box::new(Vldp::new()),
                "sms" => Box::new(Sms::new()),
                "next-line" => Box::new(NextLine::new()),
                "isb+bo" => Box::new(IsbBoHybrid::new()),
                other => return Err(format!("unknown prefetcher {other:?}").into()),
            };
            p.set_degree(degree);
            stream.iter().map(|a| p.access_collect(a)).collect()
        }
    };
    let strict = unified_accuracy_coverage_windowed(&stream, &predictions, 1);
    let windowed = unified_accuracy_coverage_windowed(&stream, &predictions, 10);
    println!(
        "{} / {prefetcher} (degree {degree}) on {} LLC accesses",
        trace.name(),
        stream.len()
    );
    println!("  unified acc/cov strict:    {strict}");
    println!("  unified acc/cov window 10: {windowed}");
    Ok(())
}

/// Parses `--flag value` pairs after the positional arguments.
fn parse_flags(args: &[String]) -> Result<std::collections::HashMap<String, String>, String> {
    let mut flags = std::collections::HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("expected --flag, found {flag:?}"));
        };
        let Some(value) = it.next() else {
            return Err(format!("--{name} requires a value"));
        };
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn config_preset(name: Option<&String>) -> Result<VoyagerConfig, String> {
    match name.map(String::as_str) {
        None | Some("scaled") => Ok(VoyagerConfig::scaled()),
        Some("test") => Ok(VoyagerConfig::test()),
        Some(other) => Err(format!("unknown config preset {other:?} (use test|scaled)")),
    }
}

fn cmd_train(args: &[String]) -> CliResult {
    let [source, rest @ ..] = args else {
        return Err("usage: train <benchmark|trace.vtrc> [--workers N] [--steps S] [--passes P] [--config test|scaled] [--checkpoint-dir DIR]".into());
    };
    let flags = parse_flags(rest)?;
    let workers: usize = flags
        .get("workers")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(1);
    let cfg = config_preset(flags.get("config"))?;
    let trace = load(source)?;
    let stream = llc_stream(&trace, &SimConfig::scaled());
    let set = TrainingSet::build(&stream, &cfg);
    if set.is_empty() {
        return Err("stream produced no trainable samples".into());
    }
    let mut tcfg = TrainerConfig::new(workers, &cfg);
    tcfg.passes = flags
        .get("passes")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(1);
    tcfg.max_steps = flags.get("steps").map(|v| v.parse()).transpose()?;
    if let Some(rows) = flags.get("shard-rows") {
        tcfg.shard_rows = rows.parse()?;
    }
    println!(
        "training on {} ({} LLC accesses, {} samples) with {} worker(s), shard {} rows",
        trace.name(),
        stream.len(),
        set.len(),
        tcfg.workers,
        tcfg.shard_rows
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if tcfg.workers > cores {
        eprintln!(
            "note: {} workers on {cores} core(s) — results stay identical, but the \
             speedup needs at least as many cores as workers",
            tcfg.workers
        );
    }
    let (model, report) = train_data_parallel(&set, &cfg, &tcfg);
    let show = report.step_losses.len().min(5);
    for (i, loss) in report.step_losses[..show].iter().enumerate() {
        println!("  step {:>4}  loss {loss:.6}", i + 1);
    }
    if report.step_losses.len() > show {
        println!("  ... ({} more steps)", report.step_losses.len() - show);
    }
    println!(
        "{} steps over {} samples in {:.2}s ({:.0} samples/s), final loss {:.6}",
        report.steps,
        report.samples,
        report.wall_seconds,
        report.throughput(),
        report.step_losses.last().copied().unwrap_or(f32::NAN),
    );
    if let Some(dir) = flags.get("checkpoint-dir") {
        let mgr = CheckpointManager::new(dir, 3)?;
        let path = mgr.save(&model, report.steps as u64)?;
        println!("checkpoint written to {}", path.display());
    }
    Ok(())
}

fn cmd_serve_bench(args: &[String]) -> CliResult {
    let [source, rest @ ..] = args else {
        return Err("usage: serve-bench <benchmark|trace.vtrc> [--requests N] [--clients C] [--max-batch B] [--max-delay-us U] [--degree D] [--config test|scaled] [--mode tape|fast|int8|table]".into());
    };
    let flags = parse_flags(rest)?;
    let cfg = config_preset(flags.get("config"))?;
    let requests: usize = flags
        .get("requests")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(2000);
    let clients: usize = flags
        .get("clients")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(4)
        .max(1);
    let degree: usize = flags
        .get("degree")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(2);
    let mode = match flags.get("mode").map(String::as_str) {
        None | Some("tape") => PredictMode::Tape,
        Some("fast") => PredictMode::FastF32,
        Some("int8") => PredictMode::FastInt8,
        Some("table") => PredictMode::Table,
        Some(bad) => return Err(format!("unknown --mode {bad:?} (tape|fast|int8|table)").into()),
    };
    let mb = MicrobatchConfig {
        max_batch: flags
            .get("max-batch")
            .map(|v| v.parse())
            .transpose()?
            .unwrap_or(32),
        max_delay: std::time::Duration::from_micros(
            flags
                .get("max-delay-us")
                .map(|v| v.parse())
                .transpose()?
                .unwrap_or(500),
        ),
    };
    let trace = load(source)?;
    let stream = llc_stream(&trace, &SimConfig::scaled());
    let vocab = voyager_trace::vocab::Vocabulary::build(&stream, &cfg.vocab);
    let tokens = vocab.tokenize(&stream);
    if tokens.len() < cfg.seq_len {
        return Err("stream shorter than one history window".into());
    }
    // History windows over the stream, reused round-robin as the
    // request workload.
    let windows: Vec<InferenceRequest> = (cfg.seq_len - 1..tokens.len())
        .map(|t| {
            let w = &tokens[t + 1 - cfg.seq_len..=t];
            InferenceRequest {
                workload: Default::default(),
                pc: w.iter().map(|a| a.pc as usize).collect(),
                page: w.iter().map(|a| a.page as usize).collect(),
                offset: w.iter().map(|a| a.offset as usize).collect(),
            }
        })
        .collect();
    let model = VoyagerModel::new(
        &cfg,
        vocab.pc_vocab_len(),
        vocab.page_vocab_len(),
        vocab.offset_vocab_len(),
    );
    println!(
        "serving {} requests from {} client(s) (max batch {}, max delay {:?}, degree {degree}, mode {mode:?})",
        requests, clients, mb.max_batch, mb.max_delay
    );
    let service = if mode == PredictMode::Table {
        let mut model = model;
        let corpus = windows_to_corpus(&windows, 4096);
        let (tables, report) = voyager_distill::distill(
            &mut model,
            &corpus,
            &voyager_distill::TableConfig::for_budget(1 << 20),
        );
        println!(
            "distilled {} windows: {} page / {} offset entries, {} KiB, corpus hit rate {}",
            report.samples,
            report.page.entries,
            report.offset.entries,
            report.memory_bytes / 1024,
            report
                .hit_rate
                .map_or_else(|| "n/a".to_string(), |r| format!("{r:.3}")),
        );
        ServiceConfig::new(degree)
            .mode(PredictMode::Table)
            .tables(tables)
            .build(model)
            .expect("table mode with tables attached")
    } else {
        ServiceConfig::new(degree)
            .mode(mode)
            .build(model)
            .expect("neural modes need no tables")
    };
    let (server, client) = MicrobatchServer::spawn(service, mb);
    let per_client = requests.div_ceil(clients);
    std::thread::scope(|scope| {
        for c in 0..clients {
            let client = client.clone();
            let windows = &windows;
            scope.spawn(move || {
                for i in 0..per_client {
                    let req = windows[(c * per_client + i) % windows.len()].clone();
                    if client.infer(req).is_none() {
                        return;
                    }
                }
            });
        }
    });
    drop(client);
    let stats = server.join();
    println!(
        "served {} requests in {} batches ({:.1} mean batch size) over {:.2}s",
        stats.requests,
        stats.batches,
        stats.mean_batch_size(),
        stats.wall_seconds
    );
    println!("  throughput: {:.0} requests/s", stats.throughput());
    println!(
        "  latency: p50 {:?}, p99 {:?}",
        stats.latency_quantile(0.5),
        stats.latency_quantile(0.99)
    );
    Ok(())
}

/// Repackages the first `cap` request windows as a [`SeqBatch`]
/// distillation corpus.
fn windows_to_corpus(windows: &[InferenceRequest], cap: usize) -> SeqBatch {
    let take = windows.len().min(cap);
    let mut corpus = SeqBatch::default();
    for w in &windows[..take] {
        corpus.pc.push(w.pc.clone());
        corpus.page.push(w.page.clone());
        corpus.offset.push(w.offset.clone());
    }
    corpus
}

/// Runs a short end-to-end pipeline (timing sim, data-parallel
/// training, microbatched serving) with every observability hook
/// enabled, folds the results into one [`Registry`] snapshot, and
/// prints the validated JSON dump on stdout.
fn cmd_fleet_bench(args: &[String]) -> CliResult {
    let flags = parse_flags(args)?;
    let shards_n: usize = flags
        .get("shards")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(4)
        .max(1);
    let clients: usize = flags
        .get("clients")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(4)
        .max(1);
    let requests: usize = flags
        .get("requests")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(200)
        .max(1);
    let depth: usize = flags
        .get("depth")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(1024);
    let slo_us: u64 = flags
        .get("slo-us")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(250_000);
    let train_steps: usize = flags
        .get("train-steps")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(40);
    const DISTILL_WINDOWS: usize = 16;

    let shards = fleet_demo::default_shards(shards_n);
    let registry = Arc::new(ModelRegistry::new());
    println!("training and publishing v1 for {shards_n} shard(s)...");
    fleet_demo::publish_all(&registry, &shards, train_steps, DISTILL_WINDOWS);
    let cfg = FleetConfig {
        microbatch: MicrobatchConfig {
            max_batch: 8,
            max_delay: Duration::from_micros(200),
        },
        max_queue_depth: depth,
        slo: Duration::from_micros(slo_us),
    };
    let (server, client) = FleetServer::spawn(&registry, &shards, &cfg)?;
    println!(
        "fleet up: {shards_n} shard(s), {clients} client(s)/shard x {requests} request(s), queue depth {depth}, SLO {slo_us} us"
    );

    // v2 for the first shard, trained before load starts so the
    // mid-run publish is just a serialize + atomic version bump.
    let swap_workload = shards[0].workload;
    let mut v2 = fleet_demo::trained_model(swap_workload, train_steps, 1);
    let v2_tables = fleet_demo::tables_for(&mut v2, swap_workload, DISTILL_WINDOWS);

    let offered = shards_n * clients * requests;
    let completed = Arc::new(AtomicUsize::new(0));
    let stopped = AtomicUsize::new(0);
    std::thread::scope(|scope| -> CliResult {
        for shard in &shards {
            for c in 0..clients {
                let client = client.clone();
                let workload = shard.workload;
                let completed = completed.clone();
                let stopped = &stopped;
                scope.spawn(move || {
                    for i in 0..requests {
                        match client.infer(fleet_demo::request(workload, c * requests + i)) {
                            // Sheds are the expected overload outcome
                            // and land on the fleet's counters.
                            Ok(_) | Err(FleetError::Shed(_)) => {}
                            Err(_) => {
                                stopped.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        }
        while completed.load(Ordering::Relaxed) < offered / 4 {
            std::thread::yield_now();
        }
        let version = registry.publish(
            swap_workload,
            &fleet_demo::model_spec(),
            &v2,
            Some(v2_tables),
        )?;
        println!("published {version} for shard {swap_workload} mid-run");
        Ok(())
    })?;
    drop(client);
    let stats = server.join();
    if stopped.load(Ordering::Relaxed) > 0 {
        return Err("a shard server stopped while clients were streaming".into());
    }

    println!(
        "\n{:<8} {:>9} {:>10} {:>12} {:>12} {:>10} {:>10} {:>4} {:>6}",
        "shard", "mode", "admitted", "shed:queue", "shed:slo", "p50_us", "p99_us", "ver", "swaps"
    );
    for (report, spec) in stats.shards.iter().zip(&shards) {
        println!(
            "{:<8} {:>9} {:>10} {:>12} {:>12} {:>10.0} {:>10.0} {:>4} {:>6}",
            report.name,
            format!("{:?}", spec.mode).to_lowercase(),
            report.admitted,
            report.shed_queue_full,
            report.shed_deadline,
            report.latency.quantile(0.5) as f64 / 1e3,
            report.latency.quantile(0.99) as f64 / 1e3,
            report.version,
            report.swaps,
        );
    }
    let shed = stats.shed();
    println!(
        "\ntotal: offered {offered}, admitted {}, shed {} ({:.1}%)",
        stats.admitted(),
        shed,
        100.0 * shed as f64 / offered.max(1) as f64,
    );
    let swapped = stats
        .shards
        .first()
        .is_some_and(|s| s.swaps >= 1 && s.swap_failures == 0);
    if !swapped {
        return Err("shard w0 did not adopt the mid-run publish".into());
    }
    println!("hot swap: shard {swap_workload} adopted the mid-run publish with zero failures");
    Ok(())
}

fn cmd_metrics(args: &[String]) -> CliResult {
    const USAGE: &str = "usage: metrics [--smoke] [--serve-mode int8|table]";
    let mut smoke = false;
    let mut serve_mode = PredictMode::Table;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--serve-mode" => {
                serve_mode = match it.next().map(String::as_str) {
                    Some("int8") => PredictMode::FastInt8,
                    Some("table") => PredictMode::Table,
                    Some(bad) => return Err(format!("{USAGE} (unknown serve mode {bad:?})").into()),
                    None => return Err(format!("{USAGE} (--serve-mode requires a value)").into()),
                };
            }
            bad => return Err(format!("{USAGE} (unexpected argument {bad:?})").into()),
        }
    }
    let (gen_cfg, cfg, steps, requests) = if smoke {
        (
            GeneratorConfig::small(),
            VoyagerConfig::test(),
            4usize,
            64usize,
        )
    } else {
        (GeneratorConfig::medium(), VoyagerConfig::scaled(), 32, 512)
    };
    voyager_tensor::kernels::reset_kernel_metrics();
    let registry = Registry::new();
    let profiler = Profiler::monotonic();

    // Timing simulation: per-level demand counters plus the prefetch
    // outcome breakdown from SimOutcome.
    let trace = Benchmark::Pr.generate(&gen_cfg);
    let sim_cfg = SimConfig::scaled();
    let outcome = {
        let _sim = profiler.span("sim");
        voyager_sim::simulate(&trace, &mut BestOffset::new(), &sim_cfg)
    };
    for (name, v) in [
        ("sim.core.instructions", outcome.instructions),
        ("sim.core.mshr_stalls", outcome.mshr_stalls),
        ("sim.core.rob_stalls", outcome.rob_stalls),
        ("sim.l1.accesses", outcome.l1_accesses),
        ("sim.l1.misses", outcome.l1_misses),
        ("sim.l2.accesses", outcome.l2_accesses),
        ("sim.l2.misses", outcome.l2_misses),
        ("sim.llc.accesses", outcome.llc_accesses),
        ("sim.llc.misses", outcome.llc_misses),
        ("sim.prefetch.issued", outcome.issued_prefetches),
        ("sim.prefetch.useful", outcome.useful_prefetches),
        ("sim.prefetch.late_hits", outcome.late_prefetch_hits),
    ] {
        registry.counter(name).add(v);
    }

    // Data-parallel training under the span profiler (epoch > step >
    // grad/allreduce/optimizer tree).
    let stream = llc_stream(&trace, &sim_cfg);
    let set = TrainingSet::build(&stream, &cfg);
    if set.is_empty() {
        return Err("stream produced no trainable samples".into());
    }
    let mut tcfg = TrainerConfig::new(2, &cfg);
    tcfg.max_steps = Some(steps);
    let (_model, report) = train_data_parallel_profiled(&set, &cfg, &tcfg, &profiler);
    registry.counter("train.steps").add(report.steps as u64);
    registry.counter("train.samples").add(report.samples as u64);
    registry.gauge("train.workers").set(report.workers as i64);

    // Microbatched serving: the server's shared histograms split
    // request latency into queue wait and batched compute.
    let vocab = voyager_trace::vocab::Vocabulary::build(&stream, &cfg.vocab);
    let tokens = vocab.tokenize(&stream);
    if tokens.len() < cfg.seq_len {
        return Err("stream shorter than one history window".into());
    }
    let windows: Vec<InferenceRequest> = (cfg.seq_len - 1..tokens.len())
        .map(|t| {
            let w = &tokens[t + 1 - cfg.seq_len..=t];
            InferenceRequest {
                workload: Default::default(),
                pc: w.iter().map(|a| a.pc as usize).collect(),
                page: w.iter().map(|a| a.page as usize).collect(),
                offset: w.iter().map(|a| a.offset as usize).collect(),
            }
        })
        .collect();
    let model = VoyagerModel::new(
        &cfg,
        vocab.pc_vocab_len(),
        vocab.page_vocab_len(),
        vocab.offset_vocab_len(),
    );
    let service = if serve_mode == PredictMode::Table {
        // Distill tables from the first half of the request windows:
        // the served second half then exercises both table hits and
        // int8 fallbacks, so every counter family observes traffic.
        let mut model = model;
        let corpus = windows_to_corpus(&windows, windows.len().div_ceil(2));
        let (tables, _report) = voyager_distill::distill(
            &mut model,
            &corpus,
            &voyager_distill::TableConfig::for_budget(1 << 20),
        );
        ServiceConfig::new(2)
            .mode(PredictMode::Table)
            .tables(tables)
            .build(model)
            .expect("table mode with tables attached")
    } else {
        // Pure quantized fast path: the int8-GEMM and arena counters
        // below still observe live traffic.
        ServiceConfig::new(2)
            .mode(serve_mode)
            .build(model)
            .expect("neural modes need no tables")
    };
    let stats = {
        let _serve = profiler.span("serve");
        let (server, client) = MicrobatchServer::spawn(service, MicrobatchConfig::default());
        let clients = 2usize;
        let per_client = requests.div_ceil(clients);
        std::thread::scope(|scope| {
            for c in 0..clients {
                let client = client.clone();
                let windows = &windows;
                scope.spawn(move || {
                    for i in 0..per_client {
                        let req = windows[(c * per_client + i) % windows.len()].clone();
                        if client.infer(req).is_none() {
                            return;
                        }
                    }
                });
            }
        });
        drop(client);
        server.join()
    };
    registry
        .counter("serve.requests")
        .add(stats.requests as u64);
    registry.counter("serve.batches").add(stats.batches as u64);

    // Kernel-layer counters (the bench crate builds voyager-tensor
    // with the `obs` feature, so these are live).
    registry
        .counter("tensor.gemm.calls")
        .add(voyager_tensor::kernels::gemm_invocations());
    registry
        .counter("tensor.gemm.flops")
        .add(voyager_tensor::kernels::gemm_flops());
    registry
        .counter("tensor.gemm.int8_calls")
        .add(voyager_tensor::kernels::int8_gemm_invocations());
    registry
        .counter("tensor.gemm.int8_ops")
        .add(voyager_tensor::kernels::int8_gemm_ops());
    // Which SIMD tier the kernels dispatched to on this host
    // (0 = scalar, 1 = avx2, 2 = avx512, 3 = neon — Isa::ordinal).
    registry
        .gauge("tensor.gemm.dispatch")
        .set(voyager_tensor::kernels::active_isa().ordinal());

    // Inference fast-path telemetry (process-global, always on).
    registry
        .counter("infer.fastpath.calls")
        .add(voyager_tensor::infer::fast_path_calls());
    registry
        .counter("infer.arena.grow_events")
        .add(voyager_tensor::infer::arena_grow_events());
    registry
        .counter("infer.arena.grown_bytes")
        .add(voyager_tensor::infer::arena_grown_bytes());

    // Distilled-table serving telemetry (process-global, always on;
    // zero when serving `--serve-mode int8`).
    registry
        .counter("infer.table.hits")
        .add(voyager_distill::table_hits());
    registry
        .counter("infer.table.misses")
        .add(voyager_distill::table_misses());
    registry
        .counter("infer.table.fallback_rows")
        .add(voyager_distill::table_fallback_rows());

    // Fold the server's histogram snapshots into the registry snapshot
    // and compose the final document.
    let mut snap = registry.snapshot();
    snap.histograms
        .insert("serve.latency_ns".into(), stats.latency);
    snap.histograms
        .insert("serve.queue_wait_ns".into(), stats.queue_wait);
    snap.histograms
        .insert("serve.compute_ns".into(), stats.compute);
    let json = format!(
        "{{\"voyagerctl\": \"metrics\", \"mode\": \"{}\", \"benchmark\": \"pr\", \"metrics\": {}, \"spans\": {}}}",
        if smoke { "smoke" } else { "full" },
        snap.to_json(),
        profiler.report().to_json(),
    );
    voyager_obs::json::validate(&json).map_err(|e| format!("metrics JSON is malformed: {e}"))?;
    println!("{json}");
    Ok(())
}

fn cmd_simpoints(args: &[String]) -> CliResult {
    let [source, rest @ ..] = args else {
        return Err("usage: simpoints <benchmark|trace.vtrc> [interval] [k]".into());
    };
    let interval: usize = rest
        .first()
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(5_000);
    let k: usize = rest.get(1).map(|v| v.parse()).transpose()?.unwrap_or(4);
    let trace = load(source)?;
    let points = simpoints(&trace, interval, k);
    println!(
        "{trace}: {} SimPoints (interval {interval}, k {k})",
        points.len()
    );
    for p in points {
        println!(
            "  start {:>8}  len {:>6}  weight {:.3}",
            p.start, p.len, p.weight
        );
    }
    Ok(())
}
