//! `voyagerctl` — command-line front end for the Voyager reproduction.
//!
//! ```text
//! voyagerctl gen <benchmark> <out.vtrc> [accesses] [seed]
//!     Generate a workload trace and save it in the binary format.
//! voyagerctl stats <benchmark|trace.vtrc>
//!     Print Table 2-style statistics.
//! voyagerctl filter <in.vtrc> <out.vtrc>
//!     Filter a raw trace to its LLC access stream (scaled hierarchy).
//! voyagerctl run <benchmark|trace.vtrc> <prefetcher> [degree]
//!     Evaluate a prefetcher (stms|domino|isb|bo|stride|markov|vldp|
//!     sms|next-line|isb+bo|isb-structural|voyager|voyager-prof|delta-lstm) with the
//!     unified metric and, for generated benchmarks, the simulator.
//! voyagerctl simpoints <benchmark|trace.vtrc> [interval] [k]
//!     SimPoint phase analysis.
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;
use std::str::FromStr;

use voyager::{DeltaLstm, DeltaLstmConfig, OnlineRun, VoyagerConfig};
use voyager_prefetch::{
    BestOffset, Domino, Isb, IsbBoHybrid, IsbStructural, Markov, NextLine, Prefetcher, Sms,
    StridePc, Stms, Vldp,
};
use voyager_sim::{llc_stream, unified_accuracy_coverage_windowed, SimConfig};
use voyager_trace::gen::{Benchmark, GeneratorConfig};
use voyager_trace::serialize::{read_trace, write_trace};
use voyager_trace::simpoint::simpoints;
use voyager_trace::stats::TraceStats;
use voyager_trace::Trace;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("filter") => cmd_filter(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("simpoints") => cmd_simpoints(&args[1..]),
        _ => {
            eprintln!("usage: voyagerctl <gen|stats|filter|run|simpoints> ... (see --help in the module docs)");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// Loads a trace from a benchmark name or a `.vtrc` file.
fn load(source: &str) -> Result<Trace, Box<dyn std::error::Error>> {
    if source.ends_with(".vtrc") {
        Ok(read_trace(BufReader::new(File::open(source)?))?)
    } else {
        let benchmark = Benchmark::from_str(source)?;
        Ok(benchmark.generate(&GeneratorConfig::medium()))
    }
}

fn cmd_gen(args: &[String]) -> CliResult {
    let [benchmark, out, rest @ ..] = args else {
        return Err("usage: gen <benchmark> <out.vtrc> [accesses] [seed]".into());
    };
    let benchmark = Benchmark::from_str(benchmark)?;
    let mut cfg = GeneratorConfig::medium();
    if let Some(a) = rest.first() {
        cfg = cfg.with_accesses(a.parse()?);
    }
    if let Some(s) = rest.get(1) {
        cfg = cfg.with_seed(s.parse()?);
    }
    let trace = benchmark.generate(&cfg);
    write_trace(BufWriter::new(File::create(out)?), &trace)?;
    println!("wrote {trace} to {out}");
    Ok(())
}

fn cmd_stats(args: &[String]) -> CliResult {
    let [source] = args else {
        return Err("usage: stats <benchmark|trace.vtrc>".into());
    };
    let trace = load(source)?;
    println!("{trace}: {}", TraceStats::of(&trace));
    Ok(())
}

fn cmd_filter(args: &[String]) -> CliResult {
    let [input, out] = args else {
        return Err("usage: filter <in.vtrc> <out.vtrc>".into());
    };
    let trace = load(input)?;
    let stream = llc_stream(&trace, &SimConfig::scaled());
    println!("{} -> {} LLC accesses", trace, stream.len());
    write_trace(BufWriter::new(File::create(out)?), &stream)?;
    Ok(())
}

fn cmd_run(args: &[String]) -> CliResult {
    let [source, prefetcher, rest @ ..] = args else {
        return Err("usage: run <benchmark|trace.vtrc> <prefetcher> [degree]".into());
    };
    let degree: usize = rest.first().map(|d| d.parse()).transpose()?.unwrap_or(1);
    let trace = load(source)?;
    let stream = llc_stream(&trace, &SimConfig::scaled());
    let predictions: Vec<Vec<u64>> = match prefetcher.as_str() {
        "voyager" => {
            OnlineRun::execute(&stream, &VoyagerConfig::scaled().with_degree(degree)).predictions
        }
        "voyager-prof" => {
            let mut cfg = VoyagerConfig::scaled().with_degree(degree);
            cfg.train_passes = 10;
            OnlineRun::execute_profiled(&stream, &cfg).predictions
        }
        "delta-lstm" => {
            DeltaLstm::run_online(&stream, &DeltaLstmConfig::scaled().with_degree(degree))
                .predictions
        }
        name => {
            let mut p: Box<dyn Prefetcher> = match name {
                "stms" => Box::new(Stms::new()),
                "domino" => Box::new(Domino::new()),
                "isb" => Box::new(Isb::new()),
                "isb-structural" => Box::new(IsbStructural::new()),
                "bo" => Box::new(BestOffset::new()),
                "stride" => Box::new(StridePc::new()),
                "markov" => Box::new(Markov::new()),
                "vldp" => Box::new(Vldp::new()),
                "sms" => Box::new(Sms::new()),
                "next-line" => Box::new(NextLine::new()),
                "isb+bo" => Box::new(IsbBoHybrid::new()),
                other => return Err(format!("unknown prefetcher {other:?}").into()),
            };
            p.set_degree(degree);
            stream.iter().map(|a| p.access(a)).collect()
        }
    };
    let strict = unified_accuracy_coverage_windowed(&stream, &predictions, 1);
    let windowed = unified_accuracy_coverage_windowed(&stream, &predictions, 10);
    println!("{} / {prefetcher} (degree {degree}) on {} LLC accesses", trace.name(), stream.len());
    println!("  unified acc/cov strict:    {strict}");
    println!("  unified acc/cov window 10: {windowed}");
    Ok(())
}

fn cmd_simpoints(args: &[String]) -> CliResult {
    let [source, rest @ ..] = args else {
        return Err("usage: simpoints <benchmark|trace.vtrc> [interval] [k]".into());
    };
    let interval: usize = rest.first().map(|v| v.parse()).transpose()?.unwrap_or(5_000);
    let k: usize = rest.get(1).map(|v| v.parse()).transpose()?.unwrap_or(4);
    let trace = load(source)?;
    let points = simpoints(&trace, interval, k);
    println!("{trace}: {} SimPoints (interval {interval}, k {k})", points.len());
    for p in points {
        println!("  start {:>8}  len {:>6}  weight {:.3}", p.start, p.len, p.weight);
    }
    Ok(())
}
