//! Kernel-layer benchmark: GEMM GFLOP/s (naive vs blocked vs
//! parallel), end-to-end training-step throughput with the fused/blocked
//! kernels on and off, and microbatched serving latency. Emits
//! `BENCH_pr3_kernels.json` at the workspace root.
//!
//! Run `cargo run --release -p voyager-bench --bin pr3_kernels` for the
//! full measurement, or with `--smoke` for the fast CI variant (same
//! schema, smaller sizes and iteration counts).

use std::time::Instant;

use voyager::{SeqBatch, VoyagerConfig, VoyagerModel};
use voyager_runtime::{
    par_gemm, ChunkPool, InferenceRequest, MicrobatchConfig, MicrobatchServer, ServiceConfig,
};
use voyager_tensor::kernels::{self, Layout};
use voyager_tensor::rng::thread_rng;
use voyager_tensor::Tensor2;

/// Times `f` over `iters` iterations after one warmup call, repeats
/// the whole batch three times, and returns the *minimum* mean seconds
/// per iteration. Taking the best batch rejects scheduler preemption
/// noise (the only way a batch can be fast is if the code is fast; a
/// mean over one batch folds every context switch into the number,
/// which made repeated runs on shared vCPUs disagree by 2x).
fn time_per_iter(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() / iters as f64);
    }
    best
}

struct GemmRow {
    layout: &'static str,
    size: usize,
    naive_gflops: f64,
    scalar_gflops: f64,
    blocked_gflops: f64,
    parallel_gflops: f64,
    speedup: f64,
    threads: usize,
    dispatch: &'static str,
}

fn operands(size: usize, layout: Layout) -> (Tensor2, Tensor2) {
    let mut rng = thread_rng();
    let (m, n, k) = (size, size, size);
    let (ashape, bshape) = match layout {
        Layout::NN => ((m, k), (k, n)),
        Layout::TN => ((k, m), (k, n)),
        Layout::NT => ((m, k), (n, k)),
    };
    (
        Tensor2::uniform(ashape.0, ashape.1, 1.0, &mut rng),
        Tensor2::uniform(bshape.0, bshape.1, 1.0, &mut rng),
    )
}

fn bench_gemm(size: usize, layout: Layout, iters: usize, pool: &ChunkPool) -> GemmRow {
    let (a, b) = operands(size, layout);
    let flops = 2.0 * (size as f64).powi(3);
    let mut out = Tensor2::zeros(size, size);

    // The fast kernels finish a small GEMM in microseconds, so `iters`
    // of them is too short a window to time on a shared vCPU — scale
    // the count up at small sizes (~constant flops per batch, capped)
    // while the slow naive path keeps the caller's count.
    let fast_iters = ((iters * 512 * 512 * 512) / (size * size * size)).clamp(iters, 1000);

    let naive = time_per_iter(iters, || {
        kernels::naive_gemm(&a, &b, layout, &mut out);
    });
    kernels::set_force_scalar(true);
    let scalar = time_per_iter(fast_iters, || {
        kernels::gemm(&a, &b, layout, &mut out);
    });
    kernels::set_force_scalar(false);
    let blocked = time_per_iter(fast_iters, || {
        kernels::gemm(&a, &b, layout, &mut out);
    });
    let parallel = time_per_iter(fast_iters, || {
        par_gemm(pool, &a, &b, layout, &mut out);
    });
    GemmRow {
        layout: match layout {
            Layout::NN => "NN",
            Layout::TN => "TN",
            Layout::NT => "NT",
        },
        size,
        naive_gflops: flops / naive / 1e9,
        scalar_gflops: flops / scalar / 1e9,
        blocked_gflops: flops / blocked / 1e9,
        parallel_gflops: flops / parallel / 1e9,
        speedup: naive / blocked,
        threads: pool.threads(),
        dispatch: kernels::active_isa().name(),
    }
}

/// Verifies that parallel GEMM is bitwise-identical to the
/// single-threaded kernel and stable across repeated runs at fixed
/// thread counts. Uses explicit multi-thread pools so the chunked code
/// path is exercised even on a single-core host.
fn check_determinism() -> bool {
    // 144³ clears the work-scaled fan-out threshold several times, so
    // multi-thread pools genuinely run the chunked path here.
    let (a, b) = operands(144, Layout::NN);
    let mut reference = Tensor2::zeros(1, 1);
    kernels::gemm(&a, &b, Layout::NN, &mut reference);
    for threads in [2, 4, 8] {
        let pool = ChunkPool::new(threads);
        for _ in 0..3 {
            let mut out = Tensor2::zeros(1, 1);
            par_gemm(&pool, &a, &b, Layout::NN, &mut out);
            let same = out
                .as_slice()
                .iter()
                .zip(reference.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            if !same {
                return false;
            }
        }
    }
    true
}

/// Pins the parallel-vs-blocked regression fix for EVERY layout/size
/// cell, not just NT/64: `par_gemm` must never fall meaningfully
/// behind the single-thread blocked kernel — below the work threshold
/// it runs blocked on the calling thread, and above it the chunk fan
/// is scaled to the available work so partition overhead cannot eat
/// the win (the committed full run once measured NT/64 parallel at
/// 10.5 vs 19.7 GFLOP/s blocked, and NT/512 at 0.77x). Any cell that
/// misses 0.9x blocked is re-measured a few times so a noisy CI
/// scheduler cannot flake the check.
fn check_parallel_matches_blocked(rows: &[GemmRow], pool: &ChunkPool, iters: usize) {
    for row in rows {
        let layout = match row.layout {
            "NN" => Layout::NN,
            "TN" => Layout::TN,
            _ => Layout::NT,
        };
        let mut last = (row.parallel_gflops, row.blocked_gflops);
        let mut ok = last.0 >= 0.9 * last.1;
        for _ in 0..3 {
            if ok {
                break;
            }
            println!(
                "parallel check {}/{}: parallel {:.2} GF/s < 0.9x blocked {:.2} GF/s, re-measuring",
                row.layout, row.size, last.0, last.1
            );
            let again = bench_gemm(row.size, layout, iters, pool);
            last = (again.parallel_gflops, again.blocked_gflops);
            ok = last.0 >= 0.9 * last.1;
        }
        assert!(
            ok,
            "parallel {}/{} regressed to {:.2} GF/s vs blocked {:.2} GF/s: \
             par_gemm is losing to the single-thread kernel",
            row.layout, row.size, last.0, last.1
        );
    }
}

fn seq_batch(b: usize, l: usize, page_vocab: usize) -> SeqBatch {
    SeqBatch {
        pc: (0..b)
            .map(|i| (0..l).map(|j| (i * 7 + j) % 64).collect())
            .collect(),
        page: (0..b)
            .map(|i| (0..l).map(|j| (i * 13 + j * 3) % page_vocab).collect())
            .collect(),
        offset: (0..b)
            .map(|i| (0..l).map(|j| (i * 11 + j * 5) % 64).collect())
            .collect(),
    }
}

struct TrainNumbers {
    batch_size: usize,
    naive_steps_per_s: f64,
    blocked_steps_per_s: f64,
    speedup: f64,
}

fn bench_training(iters: usize) -> TrainNumbers {
    let cfg = VoyagerConfig::scaled();
    let page_vocab = 1024;
    let batch = seq_batch(cfg.batch_size, cfg.seq_len, page_vocab);
    let mut pt = Tensor2::zeros(cfg.batch_size, page_vocab);
    let mut ot = Tensor2::zeros(cfg.batch_size, 64);
    for i in 0..cfg.batch_size {
        pt.set(i, (i * 37) % page_vocab, 1.0);
        ot.set(i, (i * 17) % 64, 1.0);
    }

    kernels::set_force_naive(true);
    let mut model = VoyagerModel::new(&cfg, 64, page_vocab, 64);
    let naive = time_per_iter(iters, || {
        std::hint::black_box(model.train_multi(&batch, &pt, &ot));
    });
    kernels::set_force_naive(false);
    let mut model = VoyagerModel::new(&cfg, 64, page_vocab, 64);
    let blocked = time_per_iter(iters, || {
        std::hint::black_box(model.train_multi(&batch, &pt, &ot));
    });
    TrainNumbers {
        batch_size: cfg.batch_size,
        naive_steps_per_s: 1.0 / naive,
        blocked_steps_per_s: 1.0 / blocked,
        speedup: naive / blocked,
    }
}

struct ServeNumbers {
    requests: usize,
    throughput_rps: f64,
    p50_us: f64,
    p99_us: f64,
    mean_batch: f64,
}

fn bench_serving(requests: usize) -> ServeNumbers {
    let cfg = VoyagerConfig::test();
    let page_vocab = 256;
    let model = VoyagerModel::new(&cfg, 64, page_vocab, 64);
    let service = ServiceConfig::new(2)
        .build(model)
        .expect("tape mode needs no tables");
    let (server, client) = MicrobatchServer::spawn(service, MicrobatchConfig::default());
    let clients = 4;
    std::thread::scope(|scope| {
        for c in 0..clients {
            let client = client.clone();
            let per_client = requests / clients;
            scope.spawn(move || {
                for i in 0..per_client {
                    let t = c * per_client + i;
                    let req = InferenceRequest {
                        workload: Default::default(),
                        pc: (0..cfg.seq_len).map(|j| (t + j) % 64).collect(),
                        page: (0..cfg.seq_len).map(|j| (t * 3 + j) % page_vocab).collect(),
                        offset: (0..cfg.seq_len).map(|j| (t * 5 + j) % 64).collect(),
                    };
                    std::hint::black_box(client.infer(req));
                }
            });
        }
    });
    drop(client);
    let stats = server.join();
    ServeNumbers {
        requests: stats.requests,
        throughput_rps: stats.throughput(),
        p50_us: stats.latency_quantile(0.5).as_secs_f64() * 1e6,
        p99_us: stats.latency_quantile(0.99).as_secs_f64() * 1e6,
        mean_batch: stats.mean_batch_size(),
    }
}

fn fmt_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.0".to_string()
    }
}

fn render_json(
    mode: &str,
    gemm: &[GemmRow],
    deterministic: bool,
    train: &TrainNumbers,
    serve: &ServeNumbers,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"pr3_kernels\",\n");
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str("  \"gemm\": [\n");
    for (i, r) in gemm.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"layout\": \"{}\", \"size\": {}, \"naive_gflops\": {}, \"scalar_gflops\": {}, \"blocked_gflops\": {}, \"parallel_gflops\": {}, \"speedup\": {}, \"threads\": {}, \"dispatch\": \"{}\"}}{}\n",
            r.layout,
            r.size,
            fmt_f(r.naive_gflops),
            fmt_f(r.scalar_gflops),
            fmt_f(r.blocked_gflops),
            fmt_f(r.parallel_gflops),
            fmt_f(r.speedup),
            r.threads,
            r.dispatch,
            if i + 1 < gemm.len() { "," } else { "" },
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"parallel_bitwise_identical\": {deterministic},\n"
    ));
    s.push_str(&format!(
        "  \"training\": {{\"batch_size\": {}, \"naive_steps_per_s\": {}, \"blocked_steps_per_s\": {}, \"speedup\": {}}},\n",
        train.batch_size,
        fmt_f(train.naive_steps_per_s),
        fmt_f(train.blocked_steps_per_s),
        fmt_f(train.speedup),
    ));
    s.push_str(&format!(
        "  \"serve\": {{\"requests\": {}, \"throughput_rps\": {}, \"p50_us\": {}, \"p99_us\": {}, \"mean_batch\": {}}}\n",
        serve.requests,
        fmt_f(serve.throughput_rps),
        fmt_f(serve.p50_us),
        fmt_f(serve.p99_us),
        fmt_f(serve.mean_batch),
    ));
    s.push_str("}\n");
    s
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sizes, gemm_iters, train_iters, serve_requests): (&[usize], usize, usize, usize) = if smoke
    {
        (&[64, 256], 2, 2, 64)
    } else {
        (&[64, 128, 256, 512], 5, 8, 512)
    };
    let pool = ChunkPool::with_available_parallelism();

    let mut gemm = Vec::new();
    for &size in sizes {
        for layout in [Layout::NN, Layout::TN, Layout::NT] {
            let row = bench_gemm(size, layout, gemm_iters, &pool);
            println!(
                "gemm/{}/{}: naive {:.2} GF/s, scalar {:.2} GF/s, blocked {:.2} GF/s ({:.1}x, {}), parallel {:.2} GF/s ({} threads)",
                row.layout, size, row.naive_gflops, row.scalar_gflops, row.blocked_gflops,
                row.speedup, row.dispatch, row.parallel_gflops, row.threads
            );
            gemm.push(row);
        }
    }
    let deterministic = check_determinism();
    println!("parallel bitwise identical: {deterministic}");
    assert!(deterministic, "parallel GEMM diverged from single-thread");
    check_parallel_matches_blocked(&gemm, &pool, gemm_iters.max(3));

    let train = bench_training(train_iters);
    println!(
        "training: {:.3} steps/s naive, {:.3} steps/s blocked ({:.1}x), batch {}",
        train.naive_steps_per_s, train.blocked_steps_per_s, train.speedup, train.batch_size
    );
    let serve = bench_serving(serve_requests);
    println!(
        "serve: {} requests, {:.0} rps, p50 {:.0} us, p99 {:.0} us, mean batch {:.1}",
        serve.requests, serve.throughput_rps, serve.p50_us, serve.p99_us, serve.mean_batch
    );

    let json = render_json(
        if smoke { "smoke" } else { "full" },
        &gemm,
        deterministic,
        &train,
        &serve,
    );
    if let Err(e) = voyager_obs::json::validate(&json) {
        eprintln!("generated JSON is malformed: {e}\n{json}");
        std::process::exit(1);
    }
    // Smoke runs (CI) validate the harness without clobbering the
    // committed full-mode measurement at the workspace root.
    let path = if smoke {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_pr3_kernels.smoke.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr3_kernels.json")
    };
    std::fs::write(path, &json).expect("write BENCH_pr3_kernels.json");
    println!("wrote {path}");
}
