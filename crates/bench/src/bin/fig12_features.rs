//! Figure 12: feature ablation. Voyager's richer *feature* (a sequence
//! of data addresses) is isolated by fixing the labeling scheme:
//! Voyager-global (global label) vs STMS, and Voyager-PC (PC label) vs
//! ISB — plus Voyager-PC with and without the PC history as an input
//! feature.
//!
//! Paper result: Voyager-global improves coverage over STMS by 19.8%
//! and Voyager-PC over ISB by 16.4%, while adding the PC *feature*
//! changes little (the PC is a useful labeler, not a useful feature).

use voyager::{FeatureSet, LabelMode, OnlineRun, VoyagerConfig};
use voyager_bench::{baseline_predictions, prepare, Scale, UNIFIED_WINDOW};
use voyager_prefetch::{Isb, Stms};
use voyager_sim::unified_accuracy_coverage_windowed as score;
use voyager_trace::gen::Benchmark;
use voyager_trace::labels::LabelScheme;

/// Subset of benchmarks used for the ablation sweeps (documented in
/// EXPERIMENTS.md): one per pattern family, to bound single-core
/// runtime.
const SUBSET: [Benchmark; 4] = [
    Benchmark::Pr,
    Benchmark::Mcf,
    Benchmark::Soplex,
    Benchmark::Omnetpp,
];

fn main() {
    let scale = Scale::from_env();
    let mut base = VoyagerConfig::scaled();
    base.train_passes = 10;
    let mut rows = Vec::new();
    for b in SUBSET {
        eprintln!("[fig12] {b} ...");
        let w = prepare(b, scale);
        let stream = &w.stream;
        let stms = score(
            stream,
            &baseline_predictions(stream, &mut Stms::new()),
            UNIFIED_WINDOW,
        );
        let isb = score(
            stream,
            &baseline_predictions(stream, &mut Isb::new()),
            UNIFIED_WINDOW,
        );
        let vglobal = OnlineRun::execute_profiled(
            stream,
            &base.with_labels(LabelMode::Single(LabelScheme::Global)),
        );
        let vpc = OnlineRun::execute_profiled(
            stream,
            &base.with_labels(LabelMode::Single(LabelScheme::Pc)),
        );
        let vpc_nopc = OnlineRun::execute_profiled(
            stream,
            &base
                .with_labels(LabelMode::Single(LabelScheme::Pc))
                .with_features(FeatureSet {
                    pc: false,
                    address: true,
                }),
        );
        rows.push((
            b.name().to_string(),
            vec![
                stms.value(),
                vglobal
                    .unified_score_windowed(stream, UNIFIED_WINDOW)
                    .value(),
                isb.value(),
                vpc.unified_score_windowed(stream, UNIFIED_WINDOW).value(),
                vpc_nopc
                    .unified_score_windowed(stream, UNIFIED_WINDOW)
                    .value(),
            ],
        ));
    }
    voyager_bench::print_table(
        "Figure 12: features (unified acc/cov, window 10)",
        &["stms", "voy-global", "isb", "voy-pc", "voy-pc-noPCfeat"],
        &rows,
    );
    println!("\npaper: Voyager-global > STMS by ~20pp; Voyager-PC > ISB by ~16pp; removing the PC feature changes little");
}
