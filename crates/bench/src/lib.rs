//! Shared harness utilities for regenerating the paper's tables and
//! figures.
//!
//! Each figure/table has a binary under `src/bin/` (see DESIGN.md's
//! per-experiment index); this library provides the pieces they share:
//! scale selection, trace/stream preparation, baseline prediction
//! collection, and plain-text table rendering.
//!
//! Set `VOYAGER_SCALE=small|medium|full` to trade experiment fidelity
//! against runtime (default: `medium`, a few minutes per figure on one
//! core; `full` is what EXPERIMENTS.md records).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use voyager::{OnlineRun, VoyagerConfig};
use voyager_prefetch::Prefetcher;
use voyager_sim::{llc_stream, SimConfig};
use voyager_trace::gen::{Benchmark, GeneratorConfig};
use voyager_trace::Trace;

/// Lookahead window of the unified accuracy/coverage metric used by the
/// experiments (the paper's co-occurrence window; see
/// [`voyager_sim::unified_accuracy_coverage_windowed`]).
pub const UNIFIED_WINDOW: usize = 10;

/// Experiment scale selected via the `VOYAGER_SCALE` environment
/// variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~20K accesses per trace: smoke-test quality, seconds per figure.
    Small,
    /// ~60K accesses: the default; minutes per figure.
    Medium,
    /// ~200K accesses: what EXPERIMENTS.md records.
    Full,
}

impl Scale {
    /// Reads `VOYAGER_SCALE` (defaults to `Medium`; unknown values fall
    /// back to `Medium` with a warning on stderr).
    pub fn from_env() -> Scale {
        match std::env::var("VOYAGER_SCALE").as_deref() {
            Ok("small") => Scale::Small,
            Ok("full") => Scale::Full,
            Ok(other) if other != "medium" => {
                eprintln!("warning: unknown VOYAGER_SCALE {other:?}, using medium");
                Scale::Medium
            }
            _ => Scale::Medium,
        }
    }

    /// The generator configuration for this scale.
    pub fn generator(&self) -> GeneratorConfig {
        match self {
            Scale::Small => GeneratorConfig::small().with_accesses(20_000),
            Scale::Medium => GeneratorConfig::medium(),
            Scale::Full => GeneratorConfig::full(),
        }
    }
}

/// A prepared workload: the raw trace plus the stream prefetchers see.
#[derive(Debug)]
pub struct Workload {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Raw load trace.
    pub trace: Trace,
    /// The stream prefetchers observe: the LLC-filtered stream for
    /// simulatable benchmarks, the raw trace for `search`/`ads` (which,
    /// as in the paper, carry no timing information).
    pub stream: Trace,
}

/// Prepares a benchmark at the given scale with the default scaled
/// hierarchy.
pub fn prepare(benchmark: Benchmark, scale: Scale) -> Workload {
    let trace = benchmark.generate(&scale.generator());
    let stream = if benchmark.has_timing() {
        llc_stream(&trace, &SimConfig::scaled())
    } else {
        trace.clone()
    };
    Workload {
        benchmark,
        trace,
        stream,
    }
}

/// Collects per-access prediction sets from a classical prefetcher over
/// a stream.
pub fn baseline_predictions(stream: &Trace, prefetcher: &mut dyn Prefetcher) -> Vec<Vec<u64>> {
    let mut preds = Vec::new();
    stream
        .iter()
        .map(|a| {
            prefetcher.access(a, &mut preds);
            preds.clone()
        })
        .collect()
}

/// Runs Voyager's online protocol with the scaled config at a given
/// degree.
pub fn voyager_run(stream: &Trace, degree: usize) -> OnlineRun {
    OnlineRun::execute(stream, &VoyagerConfig::scaled().with_degree(degree))
}

/// Runs the Section 5.5 profile-driven protocol (offline profiling
/// pass, online inference) with a slightly larger training budget —
/// the fair counterpart of the idealized table baselines, which also
/// memorize the full stream.
pub fn voyager_profiled_run(stream: &Trace, degree: usize) -> OnlineRun {
    let mut cfg = VoyagerConfig::scaled().with_degree(degree);
    cfg.train_passes = 10;
    OnlineRun::execute_profiled(stream, &cfg)
}

/// One benchmark's simulator results for a set of prefetchers.
#[derive(Debug)]
pub struct SimComparison {
    /// Benchmark name.
    pub benchmark: String,
    /// No-prefetcher baseline outcome.
    pub baseline: voyager_sim::SimOutcome,
    /// `(prefetcher name, outcome)` pairs.
    pub results: Vec<(String, voyager_sim::SimOutcome)>,
}

/// Simulates a trace with precomputed neural predictions replayed at
/// the LLC, truncated to `degree` candidates per access.
pub fn replay_sim(
    trace: &Trace,
    predictions: Vec<Vec<u64>>,
    degree: usize,
) -> voyager_sim::SimOutcome {
    let mut replay = voyager::ReplayPrefetcher::new(predictions);
    voyager_prefetch::Prefetcher::set_degree(&mut replay, degree);
    voyager_sim::simulate(trace, &mut replay, &SimConfig::scaled())
}

/// Runs the Fig. 5/6/8 comparison for one benchmark: every classical
/// baseline at `degree`, plus (optionally) Delta-LSTM and Voyager via
/// prediction replay. Neural runs dominate the wall-clock.
pub fn sim_comparison(workload: &Workload, degree: usize, neural: bool) -> SimComparison {
    use voyager_prefetch::{BestOffset, Domino, Isb, NoPrefetcher, Stms};
    let cfg = SimConfig::scaled();
    let baseline = voyager_sim::simulate(&workload.trace, &mut NoPrefetcher::new(), &cfg);
    let mut results = Vec::new();
    let mut classical: Vec<(&str, Box<dyn Prefetcher>)> = vec![
        ("stms", Box::new(Stms::new())),
        ("domino", Box::new(Domino::new())),
        ("isb", Box::new(Isb::new())),
        ("bo", Box::new(BestOffset::new())),
    ];
    for (name, p) in &mut classical {
        p.set_degree(degree);
        results.push((
            name.to_string(),
            voyager_sim::simulate(&workload.trace, p.as_mut(), &cfg),
        ));
    }
    if neural {
        let dl = voyager::DeltaLstm::run_online(
            &workload.stream,
            &voyager::DeltaLstmConfig::scaled().with_degree(degree),
        );
        results.push((
            "delta-lstm".to_string(),
            replay_sim(&workload.trace, dl.predictions, degree),
        ));
        let vy = voyager_run(&workload.stream, degree);
        results.push((
            "voyager".to_string(),
            replay_sim(&workload.trace, vy.predictions, degree),
        ));
        let vp = voyager_profiled_run(&workload.stream, degree);
        results.push((
            "voyager-prof".to_string(),
            replay_sim(&workload.trace, vp.predictions, degree),
        ));
    }
    SimComparison {
        benchmark: workload.benchmark.name().to_string(),
        baseline,
        results,
    }
}

/// Arithmetic mean (0.0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Renders a fixed-width table: one row per benchmark, one column per
/// series, values formatted with `{:.3}`, plus a mean row (the paper's
/// "avg" bars).
pub fn print_table(title: &str, columns: &[&str], rows: &[(String, Vec<f64>)]) {
    println!("\n== {title} ==");
    print!("{:<12}", "benchmark");
    for c in columns {
        print!(" {c:>12}");
    }
    println!();
    for (name, values) in rows {
        print!("{name:<12}");
        for v in values {
            print!(" {v:>12.3}");
        }
        println!();
    }
    if !rows.is_empty() {
        print!("{:<12}", "mean");
        for col in 0..columns.len() {
            let vals: Vec<f64> = rows
                .iter()
                .filter_map(|(_, v)| v.get(col).copied())
                .collect();
            print!(" {:>12.3}", mean(&vals));
        }
        println!();
    }
}

/// Shared synthetic multi-workload fleet used by the `pr8_fleet` bench
/// and `voyagerctl fleet-bench`: per-workload request streams, shard
/// specs cycling through the serving tiers, and train-then-publish
/// helpers over an in-memory [`ModelRegistry`].
pub mod fleet_demo {
    use std::time::Duration;

    use voyager::{SeqBatch, VoyagerConfig, VoyagerModel};
    use voyager_distill::{distill, DistilledTables, TableConfig};
    use voyager_runtime::{
        FleetConfig, InferenceRequest, MicrobatchConfig, ModelRegistry, ModelSpec, PredictMode,
        ShardSpec, Version, WorkloadId,
    };

    /// Page vocabulary shared by every demo shard.
    pub const PAGE_VOCAB: usize = 256;
    const PC_VOCAB: usize = 64;
    const OFFSET_VOCAB: usize = 64;

    /// The model layout every demo shard serves (test-scale config, so
    /// fleets spin up in seconds).
    pub fn model_spec() -> ModelSpec {
        ModelSpec {
            cfg: VoyagerConfig::test(),
            pc_vocab: PC_VOCAB,
            page_vocab: PAGE_VOCAB,
            offset_vocab: OFFSET_VOCAB,
        }
    }

    /// The `t`-th request of `workload`'s stream. Each workload walks
    /// its own stride family, so shards see distinct streams and a
    /// table shard's coverage is specific to its own corpus.
    pub fn request(workload: WorkloadId, t: usize) -> InferenceRequest {
        let w = workload.0 as usize;
        let seq = VoyagerConfig::test().seq_len;
        InferenceRequest {
            workload,
            pc: (0..seq).map(|j| (t * (w + 1) + j) % PC_VOCAB).collect(),
            page: (0..seq)
                .map(|j| (t * (2 * w + 3) + j) % PAGE_VOCAB)
                .collect(),
            offset: (0..seq).map(|j| (t * (w + 5) + j) % OFFSET_VOCAB).collect(),
        }
    }

    /// `n` shard specs cycling through the serving tiers —
    /// table-fronted int8 (the fleet default), pure int8, fast-f32 —
    /// at prefetch degree 2.
    pub fn default_shards(n: usize) -> Vec<ShardSpec> {
        let modes = [
            PredictMode::Table,
            PredictMode::FastInt8,
            PredictMode::Table,
            PredictMode::FastF32,
        ];
        (0..n)
            .map(|i| ShardSpec::new(WorkloadId(i as u32), 2, modes[i % modes.len()]))
            .collect()
    }

    /// The first `windows` request windows of `workload`'s stream as a
    /// distillation corpus.
    pub fn corpus(workload: WorkloadId, windows: usize) -> SeqBatch {
        let mut c = SeqBatch::default();
        for t in 0..windows {
            let r = request(workload, t);
            c.pc.push(r.pc);
            c.page.push(r.page);
            c.offset.push(r.offset);
        }
        c
    }

    /// Trains a fresh model on `workload`'s stream for `train_steps`
    /// single-window steps. `variant` offsets the training targets, so
    /// `variant: 1` yields a distinguishable successor model for
    /// hot-swap demos.
    pub fn trained_model(workload: WorkloadId, train_steps: usize, variant: usize) -> VoyagerModel {
        let mut model = model_spec().instantiate();
        for step in 0..train_steps {
            let r = request(workload, step);
            let batch = SeqBatch {
                pc: vec![r.pc],
                page: vec![r.page],
                offset: vec![r.offset],
            };
            let w = workload.0 as usize;
            model.train_single(
                &batch,
                &[(step * 7 + w + 13 * variant) % PAGE_VOCAB],
                &[(step * 11 + w + 17 * variant) % OFFSET_VOCAB],
            );
        }
        model
    }

    /// Distills serving tables for `workload` from the first
    /// `distill_windows` windows of its stream. Serve a longer stream
    /// and both table hits and int8 fallbacks show up.
    pub fn tables_for(
        model: &mut VoyagerModel,
        workload: WorkloadId,
        distill_windows: usize,
    ) -> DistilledTables {
        let (tables, _) = distill(
            model,
            &corpus(workload, distill_windows),
            &TableConfig::for_budget(1 << 18),
        );
        tables
    }

    /// Trains a fresh model on `shard.workload`'s stream and publishes
    /// it (with distilled tables for [`PredictMode::Table`] shards).
    /// Returns the published version.
    pub fn publish_shard(
        registry: &ModelRegistry,
        shard: &ShardSpec,
        train_steps: usize,
        distill_windows: usize,
    ) -> Version {
        let mut model = trained_model(shard.workload, train_steps, 0);
        let tables = if shard.mode == PredictMode::Table && distill_windows > 0 {
            Some(tables_for(&mut model, shard.workload, distill_windows))
        } else {
            None
        };
        registry
            .publish(shard.workload, &model_spec(), &model, tables)
            .expect("in-memory publish cannot fail")
    }

    /// Publishes one trained model per shard (see
    /// [`publish_shard`]).
    pub fn publish_all(
        registry: &ModelRegistry,
        shards: &[ShardSpec],
        train_steps: usize,
        distill_windows: usize,
    ) {
        for shard in shards {
            publish_shard(registry, shard, train_steps, distill_windows);
        }
    }

    /// Serving knobs for steady-state phases: roomy queue, generous
    /// SLO — nothing should shed.
    pub fn steady_config() -> FleetConfig {
        FleetConfig {
            microbatch: MicrobatchConfig {
                max_batch: 8,
                max_delay: Duration::from_micros(200),
            },
            max_queue_depth: 4096,
            slo: Duration::from_secs(5),
        }
    }

    /// Deliberately tight bounds for overload phases: queue depth far
    /// below the offered concurrency, tight SLO — admission control
    /// must shed instead of letting p99 blow through the objective.
    pub fn overload_config() -> FleetConfig {
        FleetConfig {
            microbatch: MicrobatchConfig {
                max_batch: 8,
                max_delay: Duration::from_micros(200),
            },
            max_queue_depth: 6,
            slo: Duration::from_millis(100),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_generator_sizes_are_ordered() {
        assert!(Scale::Small.generator().accesses < Scale::Medium.generator().accesses);
        assert!(Scale::Medium.generator().accesses < Scale::Full.generator().accesses);
    }

    #[test]
    fn prepare_filters_simulatable_benchmarks_only() {
        let w = prepare(Benchmark::Bfs, Scale::Small);
        assert!(w.stream.len() < w.trace.len());
        let g = prepare(Benchmark::Search, Scale::Small);
        assert_eq!(g.stream.len(), g.trace.len());
    }

    #[test]
    fn mean_of_values() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn baseline_predictions_align_with_stream() {
        let w = prepare(Benchmark::Pr, Scale::Small);
        let mut isb = voyager_prefetch::Isb::new();
        let preds = baseline_predictions(&w.stream, &mut isb);
        assert_eq!(preds.len(), w.stream.len());
    }
}
