//! Micro-benchmarks behind the Section 5.4 overhead numbers: per-step
//! training cost and per-access prediction latency for Voyager and
//! Delta-LSTM (the paper reports a 15–20× gap at paper scale, due to
//! Delta-LSTM's flat output vocabulary), plus the classical baselines'
//! per-access cost and the simulator's throughput.
//!
//! Formerly a criterion harness; now a plain `harness = false` binary
//! timed with `std::time::Instant` so the workspace builds with no
//! external dependencies (offline-build policy). Run with
//! `cargo bench --bench overheads`.

use std::time::Instant;

use voyager::{DeltaLstmConfig, SeqBatch, VoyagerConfig, VoyagerModel};
use voyager_prefetch::{BestOffset, Domino, Isb, Prefetcher, Stms};
use voyager_sim::{simulate, SimConfig};
use voyager_tensor::rng::thread_rng;
use voyager_tensor::Tensor2;
use voyager_trace::gen::{Benchmark, GeneratorConfig};
use voyager_trace::MemoryAccess;

/// Times `f` over `iters` iterations after one warmup call and prints
/// the mean per-iteration wall time.
fn bench(name: &str, iters: usize, mut f: impl FnMut()) {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per_iter = start.elapsed() / iters as u32;
    println!("{name:<44} {per_iter:>12.2?}/iter  ({iters} iters)");
}

fn seq_batch(b: usize, l: usize, page_vocab: usize) -> SeqBatch {
    SeqBatch {
        pc: (0..b)
            .map(|i| (0..l).map(|j| (i * 7 + j) % 64).collect())
            .collect(),
        page: (0..b)
            .map(|i| (0..l).map(|j| (i * 13 + j * 3) % page_vocab).collect())
            .collect(),
        offset: (0..b)
            .map(|i| (0..l).map(|j| (i * 11 + j * 5) % 64).collect())
            .collect(),
    }
}

fn bench_voyager() {
    let cfg = VoyagerConfig::scaled();
    let page_vocab = 2048;
    let batch = seq_batch(cfg.batch_size, cfg.seq_len, page_vocab);
    let mut pt = Tensor2::zeros(cfg.batch_size, page_vocab);
    let mut ot = Tensor2::zeros(cfg.batch_size, 64);
    for i in 0..cfg.batch_size {
        pt.set(i, (i * 37) % page_vocab, 1.0);
        ot.set(i, (i * 17) % 64, 1.0);
    }
    let mut model = VoyagerModel::new(&cfg, 64, page_vocab, 64);
    bench("voyager/train_step_batch", 10, || {
        std::hint::black_box(model.train_multi(&batch, &pt, &ot));
    });
    let mut model = VoyagerModel::new(&cfg, 64, page_vocab, 64);
    bench("voyager/predict_batch", 10, || {
        std::hint::black_box(model.predict(&batch, 1));
    });
}

fn bench_delta_lstm() {
    // The flat delta vocabulary makes Delta-LSTM's output layer (and
    // thus each step) far more expensive than Voyager's hierarchical
    // heads at matched vocabulary coverage.
    let cfg = DeltaLstmConfig::scaled();
    let trace: voyager_trace::Trace = (0..1500u64)
        .map(|i| MemoryAccess::new(7, ((i * 3) % 700) * 64))
        .collect();
    let mut small = cfg;
    small.epoch_accesses = 500;
    small.train_passes = 1;
    bench("delta_lstm/run_online_small_stream", 3, || {
        std::hint::black_box(voyager::DeltaLstm::run_online(&trace, &small));
    });
}

type MakePrefetcher = Box<dyn Fn() -> Box<dyn Prefetcher>>;

fn bench_baselines() {
    let trace = Benchmark::Pr.generate(&GeneratorConfig::small());
    let makes: [(&str, MakePrefetcher); 4] = [
        ("stms", Box::new(|| Box::new(Stms::new()))),
        ("domino", Box::new(|| Box::new(Domino::new()))),
        ("isb", Box::new(|| Box::new(Isb::new()))),
        ("bo", Box::new(|| Box::new(BestOffset::new()))),
    ];
    for (name, make) in makes {
        bench(&format!("baseline_access/{name}"), 10, || {
            let mut p = make();
            let mut preds = Vec::new();
            for a in &trace {
                p.access(a, &mut preds);
                std::hint::black_box(&preds);
            }
        });
    }
}

fn bench_simulator() {
    let trace = Benchmark::Bfs.generate(&GeneratorConfig::small());
    bench("simulator/no_prefetch_8k_accesses", 20, || {
        std::hint::black_box(simulate(
            &trace,
            &mut voyager_prefetch::NoPrefetcher::new(),
            &SimConfig::scaled(),
        ));
    });
}

fn bench_hier_softmax() {
    // Section 5.5: hierarchical softmax vs a flat output layer over a
    // large class space (the paper estimates 3-4x savings).
    use voyager_nn::{Adam, HierarchicalSoftmax, Layer, Linear, ParamStore, Session};
    let mut rng = thread_rng();
    let (hidden, classes, batch) = (64usize, 10_000usize, 32usize);
    let targets: Vec<usize> = (0..batch).map(|i| (i * 317) % classes).collect();

    let mut store = ParamStore::new();
    let head = Linear::new(&mut store, "flat", hidden, classes, &mut rng);
    let mut adam = Adam::new(0.001);
    let h = Tensor2::uniform(batch, hidden, 1.0, &mut rng);
    bench("output_head_10k/flat_softmax_step", 10, || {
        let mut sess = Session::new();
        let hv = sess.tape.leaf(h.clone(), false);
        let logits = head.forward(&mut sess, &store, hv);
        let loss = sess.tape.softmax_cross_entropy(logits, &targets);
        sess.step(loss, &mut store, &mut adam);
    });

    let mut store = ParamStore::new();
    let head = HierarchicalSoftmax::new(&mut store, "hs", hidden, classes, &mut rng);
    let mut adam = Adam::new(0.001);
    let h = Tensor2::uniform(batch, hidden, 1.0, &mut rng);
    bench("output_head_10k/hierarchical_softmax_step", 10, || {
        let mut sess = Session::new();
        let hv = sess.tape.leaf(h.clone(), false);
        let loss = head.loss(&mut sess, &store, hv, &targets);
        sess.step(loss, &mut store, &mut adam);
    });
}

fn bench_tensor() {
    let mut rng = thread_rng();
    let a = Tensor2::uniform(64, 128, 1.0, &mut rng);
    let b = Tensor2::uniform(128, 192, 1.0, &mut rng);
    bench("tensor/matmul_64x128x192", 200, || {
        std::hint::black_box(a.matmul(&b));
    });
}

fn main() {
    println!("voyager overhead micro-benchmarks (mean wall time)");
    bench_tensor();
    bench_baselines();
    bench_simulator();
    bench_hier_softmax();
    bench_voyager();
    bench_delta_lstm();
}
