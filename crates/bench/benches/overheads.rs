//! Criterion micro-benchmarks behind the Section 5.4 overhead numbers:
//! per-step training cost and per-access prediction latency for Voyager
//! and Delta-LSTM (the paper reports a 15–20× gap at paper scale, due
//! to Delta-LSTM's flat output vocabulary), plus the classical
//! baselines' per-access cost and the simulator's throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use voyager::{DeltaLstmConfig, SeqBatch, VoyagerConfig, VoyagerModel};
use voyager_prefetch::{BestOffset, Domino, Isb, Prefetcher, Stms};
use voyager_sim::{simulate, SimConfig};
use voyager_tensor::Tensor2;
use voyager_trace::gen::{Benchmark, GeneratorConfig};
use voyager_trace::MemoryAccess;

fn seq_batch(b: usize, l: usize, page_vocab: usize) -> SeqBatch {
    SeqBatch {
        pc: (0..b).map(|i| (0..l).map(|j| (i * 7 + j) % 64).collect()).collect(),
        page: (0..b).map(|i| (0..l).map(|j| (i * 13 + j * 3) % page_vocab).collect()).collect(),
        offset: (0..b).map(|i| (0..l).map(|j| (i * 11 + j * 5) % 64).collect()).collect(),
    }
}

fn bench_voyager(c: &mut Criterion) {
    let cfg = VoyagerConfig::scaled();
    let page_vocab = 2048;
    let batch = seq_batch(cfg.batch_size, cfg.seq_len, page_vocab);
    let mut pt = Tensor2::zeros(cfg.batch_size, page_vocab);
    let mut ot = Tensor2::zeros(cfg.batch_size, 64);
    for i in 0..cfg.batch_size {
        pt.set(i, (i * 37) % page_vocab, 1.0);
        ot.set(i, (i * 17) % 64, 1.0);
    }
    let mut group = c.benchmark_group("voyager");
    group.sample_size(10);
    group.bench_function("train_step_batch", |bencher| {
        let mut model = VoyagerModel::new(&cfg, 64, page_vocab, 64);
        bencher.iter(|| model.train_multi(&batch, &pt, &ot));
    });
    group.bench_function("predict_batch", |bencher| {
        let mut model = VoyagerModel::new(&cfg, 64, page_vocab, 64);
        bencher.iter(|| model.predict(&batch, 1));
    });
    group.finish();
}

fn bench_delta_lstm(c: &mut Criterion) {
    // The flat delta vocabulary makes Delta-LSTM's output layer (and
    // thus each step) far more expensive than Voyager's hierarchical
    // heads at matched vocabulary coverage.
    let cfg = DeltaLstmConfig::scaled();
    let mut group = c.benchmark_group("delta_lstm");
    group.sample_size(10);
    group.bench_function("run_online_small_stream", |bencher| {
        let trace: voyager_trace::Trace = (0..1500u64)
            .map(|i| MemoryAccess::new(7, ((i * 3) % 700) * 64))
            .collect();
        let mut small = cfg;
        small.epoch_accesses = 500;
        small.train_passes = 1;
        bencher.iter(|| voyager::DeltaLstm::run_online(&trace, &small));
    });
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let trace = Benchmark::Pr.generate(&GeneratorConfig::small());
    let mut group = c.benchmark_group("baseline_access");
    for (name, make) in [
        ("stms", Box::new(|| Box::new(Stms::new()) as Box<dyn Prefetcher>)
            as Box<dyn Fn() -> Box<dyn Prefetcher>>),
        ("domino", Box::new(|| Box::new(Domino::new()))),
        ("isb", Box::new(|| Box::new(Isb::new()))),
        ("bo", Box::new(|| Box::new(BestOffset::new()))),
    ] {
        group.bench_function(name, |bencher| {
            bencher.iter_batched(
                &make,
                |mut p| {
                    for a in &trace {
                        std::hint::black_box(p.access(a));
                    }
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let trace = Benchmark::Bfs.generate(&GeneratorConfig::small());
    let mut group = c.benchmark_group("simulator");
    group.bench_function("no_prefetch_8k_accesses", |bencher| {
        bencher.iter(|| {
            simulate(&trace, &mut voyager_prefetch::NoPrefetcher::new(), &SimConfig::scaled())
        });
    });
    group.finish();
}

fn bench_hier_softmax(c: &mut Criterion) {
    // Section 5.5: hierarchical softmax vs a flat output layer over a
    // large class space (the paper estimates 3-4x savings).
    use voyager_nn::{Adam, HierarchicalSoftmax, Linear, ParamStore, Session};
    let mut rng = rand::thread_rng();
    let (hidden, classes, batch) = (64usize, 10_000usize, 32usize);
    let mut group = c.benchmark_group("output_head_10k_classes");
    group.sample_size(10);
    group.bench_function("flat_softmax_step", |bencher| {
        let mut store = ParamStore::new();
        let head = Linear::new(&mut store, "flat", hidden, classes, &mut rng);
        let mut adam = Adam::new(0.001);
        let h = Tensor2::uniform(batch, hidden, 1.0, &mut rng);
        let targets: Vec<usize> = (0..batch).map(|i| (i * 317) % classes).collect();
        bencher.iter(|| {
            let mut sess = Session::new();
            let hv = sess.tape.leaf(h.clone(), false);
            let logits = head.forward(&mut sess, &store, hv);
            let loss = sess.tape.softmax_cross_entropy(logits, &targets);
            sess.step(loss, &mut store, &mut adam);
        });
    });
    group.bench_function("hierarchical_softmax_step", |bencher| {
        let mut store = ParamStore::new();
        let head = HierarchicalSoftmax::new(&mut store, "hs", hidden, classes, &mut rng);
        let mut adam = Adam::new(0.001);
        let h = Tensor2::uniform(batch, hidden, 1.0, &mut rng);
        let targets: Vec<usize> = (0..batch).map(|i| (i * 317) % classes).collect();
        bencher.iter(|| {
            let mut sess = Session::new();
            let hv = sess.tape.leaf(h.clone(), false);
            let loss = head.loss(&mut sess, &store, hv, &targets);
            sess.step(loss, &mut store, &mut adam);
        });
    });
    group.finish();
}

fn bench_tensor(c: &mut Criterion) {
    let mut rng = rand::thread_rng();
    let a = Tensor2::uniform(64, 128, 1.0, &mut rng);
    let b = Tensor2::uniform(128, 192, 1.0, &mut rng);
    c.bench_function("matmul_64x128x192", |bencher| {
        bencher.iter(|| std::hint::black_box(a.matmul(&b)));
    });
}

criterion_group!(
    benches,
    bench_voyager,
    bench_delta_lstm,
    bench_baselines,
    bench_simulator,
    bench_hier_softmax,
    bench_tensor
);
criterion_main!(benches);
