//! Numeric gradient checks through whole layers: the analytic gradients
//! that `Session::step` applies must match central finite differences
//! of the loss with respect to every parameter tensor.

use voyager_tensor::rng::{SeedableRng, StdRng};

use voyager_nn::{Embedding, ExpertAttention, Layer, Linear, LstmCell, ParamStore, Session};
use voyager_tensor::gradcheck::assert_grads_close;
use voyager_tensor::{Tape, Tensor2};

/// Computes the loss value for the current store contents.
fn loss_value(
    build: &dyn Fn(&mut Session, &ParamStore) -> voyager_tensor::Var,
    store: &ParamStore,
) -> f32 {
    let mut sess = Session::new();
    let loss = build(&mut sess, store);
    sess.tape.value(loss).get(0, 0)
}

/// Checks analytic parameter gradients against finite differences for
/// every parameter in the store.
fn check_params(
    build: impl Fn(&mut Session, &ParamStore) -> voyager_tensor::Var,
    store: &mut ParamStore,
) {
    let ids: Vec<_> = store.iter().map(|(id, _, _)| id).collect();
    for id in ids {
        let (rows, cols) = store.value(id).shape();
        let mut numeric = Tensor2::zeros(rows, cols);
        let eps = 5e-3;
        for r in 0..rows {
            for c in 0..cols {
                let orig = store.value(id).get(r, c);
                store.value_mut(id).set(r, c, orig + eps);
                let plus = loss_value(&build, store);
                store.value_mut(id).set(r, c, orig - eps);
                let minus = loss_value(&build, store);
                store.value_mut(id).set(r, c, orig);
                numeric.set(r, c, (plus - minus) / (2.0 * eps));
            }
        }
        // Analytic: bind param onto a fresh tape through the builder by
        // replaying it and reading the session's gradient via a probe
        // leaf is not exposed; instead verify through the optimizer-free
        // path: build with the param perturbed along the numeric
        // gradient direction and check first-order decrease.
        let norm = numeric.sq_norm().sqrt();
        if norm < 1e-6 {
            continue;
        }
        let before = loss_value(&build, store);
        let step = 1e-2 / norm;
        let grad = numeric.clone();
        store.value_mut(id).add_scaled(&grad, -step);
        let after = loss_value(&build, store);
        store.value_mut(id).add_scaled(&grad, step);
        assert!(
            after < before + 1e-6,
            "descending along the numeric gradient of {} must not increase the loss: {} -> {}",
            store.name(id),
            before,
            after
        );
        // And the numeric gradient itself must be finite everywhere.
        assert_grads_close(&numeric, &numeric, 1.0);
    }
}

#[test]
fn linear_layer_descends_along_numeric_gradient() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut store = ParamStore::new();
    let fc = Linear::new(&mut store, "fc", 3, 2, &mut rng);
    let x = Tensor2::uniform(4, 3, 1.0, &mut rng);
    let build = move |sess: &mut Session, store: &ParamStore| {
        let xv = sess.tape.leaf(x.clone(), false);
        let y = fc.forward(sess, store, xv);
        let sq = sess.tape.mul(y, y);
        sess.tape.mean_all(sq)
    };
    check_params(build, &mut store);
}

#[test]
fn lstm_cell_descends_along_numeric_gradient() {
    let mut rng = StdRng::seed_from_u64(12);
    let mut store = ParamStore::new();
    let cell = LstmCell::new(&mut store, "lstm", 2, 3, &mut rng);
    let x1 = Tensor2::uniform(2, 2, 1.0, &mut rng);
    let x2 = Tensor2::uniform(2, 2, 1.0, &mut rng);
    let build = move |sess: &mut Session, store: &ParamStore| {
        let s0 = cell.zero_state(sess, 2);
        let x1v = sess.tape.leaf(x1.clone(), false);
        let s1 = cell.forward(sess, store, (x1v, s0));
        let x2v = sess.tape.leaf(x2.clone(), false);
        let s2 = cell.forward(sess, store, (x2v, s1));
        let sq = sess.tape.mul(s2.h, s2.h);
        sess.tape.sum_all(sq)
    };
    check_params(build, &mut store);
}

#[test]
fn attention_plus_embedding_descends_along_numeric_gradient() {
    let mut rng = StdRng::seed_from_u64(13);
    let mut store = ParamStore::new();
    let page = Embedding::new(&mut store, "page", 5, 4, &mut rng);
    let offset = Embedding::new(&mut store, "off", 7, 8, &mut rng); // 2 experts of dim 4
    let attn = ExpertAttention::new(2, 0.5);
    let build = move |sess: &mut Session, store: &ParamStore| {
        let pg = page.forward(sess, store, &[1, 3]);
        let of = offset.forward(sess, store, &[2, 6]);
        let mixed = attn.forward(sess, store, (pg, of));
        let sq = sess.tape.mul(mixed, mixed);
        sess.tape.sum_all(sq)
    };
    check_params(build, &mut store);
}

#[test]
fn session_gradients_match_finite_differences_for_linear() {
    // Direct analytic-vs-numeric comparison where the gradient is
    // observable: replicate the Linear layer on a raw tape.
    let mut rng = StdRng::seed_from_u64(14);
    let w = Tensor2::uniform(3, 2, 1.0, &mut rng);
    let b = Tensor2::uniform(1, 2, 1.0, &mut rng);
    let x = Tensor2::uniform(4, 3, 1.0, &mut rng);
    let f = |inputs: &[Tensor2]| -> f32 {
        let mut tape = Tape::new();
        let wv = tape.leaf(inputs[0].clone(), false);
        let bv = tape.leaf(inputs[1].clone(), false);
        let xv = tape.leaf(x.clone(), false);
        let xw = tape.matmul(xv, wv);
        let y = tape.add_row(xw, bv);
        let sq = tape.mul(y, y);
        let m = tape.mean_all(sq);
        tape.value(m).get(0, 0)
    };
    let numeric = voyager_tensor::gradcheck::numeric_grad(f, &[w.clone(), b.clone()], 1e-2);

    let mut tape = Tape::new();
    let wv = tape.leaf(w, true);
    let bv = tape.leaf(b, true);
    let xv = tape.leaf(x.clone(), false);
    let xw = tape.matmul(xv, wv);
    let y = tape.add_row(xw, bv);
    let sq = tape.mul(y, y);
    let loss = tape.mean_all(sq);
    tape.backward(loss);
    assert_grads_close(tape.grad(wv).unwrap(), &numeric[0], 3e-2);
    assert_grads_close(tape.grad(bv).unwrap(), &numeric[1], 3e-2);
}
