//! Adam optimizer with gradient clipping, learning-rate decay and lazy
//! (sparse) embedding updates.

use std::collections::BTreeMap;

use voyager_tensor::Tensor2;

use crate::grads::{GradEntry, GradSet};
use crate::{ParamId, ParamStore};

/// The Adam optimizer (Kingma & Ba), configured as in the paper's
/// Table 1: learning rate `0.001`, and a learning-rate decay *ratio*
/// applied between training epochs ([`Adam::decay_lr`]).
///
/// Dense parameters receive the standard update. Embedding tables
/// updated through [`crate::Session::gather`] receive a *lazy* update:
/// only the rows touched in the step are moved, using the global step
/// count for bias correction.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    max_grad_norm: Option<f32>,
    t: u64,
    moments: BTreeMap<ParamId, (Tensor2, Tensor2)>,
}

impl Adam {
    /// Creates an optimizer with the given learning rate and default
    /// moment coefficients (`beta1 = 0.9`, `beta2 = 0.999`,
    /// `eps = 1e-8`) and gradient-norm clipping at `5.0`.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            max_grad_norm: Some(5.0),
            t: 0,
            moments: BTreeMap::new(),
        }
    }

    /// Sets the maximum global gradient norm (`None` disables clipping).
    pub fn with_max_grad_norm(mut self, max: Option<f32>) -> Self {
        self.max_grad_norm = max;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Divides the learning rate by `ratio` (the paper's "learning rate
    /// decay ratio" of 2, applied when validation loss plateaus).
    ///
    /// # Panics
    ///
    /// Panics if `ratio <= 0`.
    pub fn decay_lr(&mut self, ratio: f32) {
        assert!(ratio > 0.0, "decay ratio must be positive");
        self.lr /= ratio;
    }

    /// Number of optimizer steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    pub(crate) fn begin_step(&mut self) {
        self.t += 1;
    }

    /// Applies one optimizer step from a materialized [`GradSet`] (the
    /// counterpart of [`Session::step`](crate::Session::step) for the
    /// decomposed collect/reduce/apply flow). Clipping uses the set's
    /// global norm, so an aggregated set is clipped exactly once, as a
    /// whole.
    pub fn apply_grad_set(&mut self, store: &mut ParamStore, grads: &GradSet) {
        self.begin_step();
        let clip = self.clip_scale(grads.sq_norm());
        for (id, entry) in grads.iter() {
            match entry {
                GradEntry::Dense(g) => self.apply_dense(store, id, g, clip),
                GradEntry::Sparse { rows, grad } => self.apply_sparse(store, id, rows, grad, clip),
            }
        }
    }

    /// Clones the optimizer's mutable state (learning rate, step count,
    /// per-parameter moments) for checkpointing. The moment map is
    /// ordered by parameter index, so the export is deterministic.
    pub fn export_state(&self) -> AdamState {
        let moments: Vec<(usize, Tensor2, Tensor2)> = self
            .moments
            .iter()
            .map(|(id, (m, v))| (id.0, m.clone(), v.clone()))
            .collect();
        AdamState {
            lr: self.lr,
            steps: self.t,
            moments,
        }
    }

    /// Restores state exported by [`Adam::export_state`]. Hyperparameters
    /// (betas, epsilon, clip threshold) are construction-time constants
    /// and are kept as-is.
    pub fn import_state(&mut self, state: AdamState) {
        self.lr = state.lr;
        self.t = state.steps;
        self.moments = state
            .moments
            .into_iter()
            .map(|(i, m, v)| (ParamId(i), (m, v)))
            .collect();
    }

    /// Returns the multiplier that scales gradients so the global norm
    /// (whose *square* is given) does not exceed the configured maximum.
    pub(crate) fn clip_scale(&self, global_sq_norm: f32) -> f32 {
        match self.max_grad_norm {
            Some(max) if global_sq_norm > max * max => max / global_sq_norm.sqrt(),
            _ => 1.0,
        }
    }

    pub(crate) fn apply_dense(
        &mut self,
        store: &mut ParamStore,
        id: ParamId,
        grad: &Tensor2,
        clip: f32,
    ) {
        let value = store.value_mut(id);
        let (rows, cols) = value.shape();
        let (m, v) = self
            .moments
            .entry(id)
            .or_insert_with(|| (Tensor2::zeros(rows, cols), Tensor2::zeros(rows, cols)));
        let (bc1, bc2) = {
            let t = self.t as i32;
            (1.0 - self.beta1.powi(t), 1.0 - self.beta2.powi(t))
        };
        // Zipped slice iterators instead of indexed access: the bounds
        // checks are elided and the moment/update arithmetic (including
        // the sqrt) auto-vectorizes, which matters because every dense
        // parameter in the model flows through this loop each step.
        let iter = value
            .as_mut_slice()
            .iter_mut()
            .zip(grad.as_slice())
            .zip(m.as_mut_slice().iter_mut().zip(v.as_mut_slice().iter_mut()));
        for ((val, &g), (mi, vi)) in iter {
            let g = g * clip;
            *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
            *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
            let mhat = *mi / bc1;
            let vhat = *vi / bc2;
            *val -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    pub(crate) fn apply_sparse(
        &mut self,
        store: &mut ParamStore,
        id: ParamId,
        rows: &[usize],
        grad: &Tensor2,
        clip: f32,
    ) {
        let value = store.value_mut(id);
        let (vrows, cols) = value.shape();
        let (m, v) = self
            .moments
            .entry(id)
            .or_insert_with(|| (Tensor2::zeros(vrows, cols), Tensor2::zeros(vrows, cols)));
        let (bc1, bc2) = {
            let t = self.t as i32;
            (1.0 - self.beta1.powi(t), 1.0 - self.beta2.powi(t))
        };
        // Coalesce duplicate rows first so a row gathered k times gets a
        // single combined update (matching dense semantics). Sorting the
        // gather indices and accumulating runs into one reused buffer
        // keeps this allocation-free per row and lets each touched row
        // be updated through contiguous slices — the hierarchical page
        // head feeds thousands of scattered leaf rows through here every
        // step, where the old per-row `BTreeMap<usize, Vec<f32>>` plus
        // element-wise `get`/`set` dominated the whole training step.
        let mut order: Vec<u32> = (0..rows.len() as u32).collect();
        order.sort_unstable_by_key(|&i| rows[i as usize]);
        let mut acc = vec![0.0f32; cols];
        let mut i = 0;
        while i < order.len() {
            let r = rows[order[i] as usize];
            acc.fill(0.0);
            while i < order.len() && rows[order[i] as usize] == r {
                for (a, &g) in acc.iter_mut().zip(grad.row(order[i] as usize)) {
                    *a += g * clip;
                }
                i += 1;
            }
            let mrow = m.row_mut(r);
            let vrow = v.row_mut(r);
            let valrow = value.row_mut(r);
            for c in 0..cols {
                let g = acc[c];
                let mi = self.beta1 * mrow[c] + (1.0 - self.beta1) * g;
                let vi = self.beta2 * vrow[c] + (1.0 - self.beta2) * g * g;
                mrow[c] = mi;
                vrow[c] = vi;
                valrow[c] -= self.lr * (mi / bc1) / ((vi / bc2).sqrt() + self.eps);
            }
        }
    }
}

/// Snapshot of an [`Adam`] optimizer's mutable state, as produced by
/// [`Adam::export_state`]. Moment tensors are keyed by parameter index
/// within the owning [`ParamStore`] and sorted ascending.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamState {
    /// Current (possibly decayed) learning rate.
    pub lr: f32,
    /// Number of optimizer steps taken.
    pub steps: u64,
    /// `(param index, first moment, second moment)`, sorted by index.
    pub moments: Vec<(usize, Tensor2, Tensor2)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Session;

    #[test]
    fn minimizes_quadratic() {
        let mut store = ParamStore::new();
        let id = store.register("x", Tensor2::scalar(5.0));
        let mut adam = Adam::new(0.5);
        for _ in 0..200 {
            let mut sess = Session::new();
            let x = sess.param(&store, id);
            let sq = sess.tape.mul(x, x);
            let loss = sess.tape.sum_all(sq);
            sess.step(loss, &mut store, &mut adam);
        }
        assert!(store.value(id).get(0, 0).abs() < 0.05);
        assert_eq!(adam.steps(), 200);
    }

    #[test]
    fn lr_decay_halves() {
        let mut adam = Adam::new(0.001);
        adam.decay_lr(2.0);
        assert!((adam.lr() - 0.0005).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "decay ratio must be positive")]
    fn lr_decay_rejects_zero() {
        Adam::new(0.001).decay_lr(0.0);
    }

    #[test]
    fn clip_scale_caps_large_gradients() {
        let adam = Adam::new(0.001).with_max_grad_norm(Some(1.0));
        assert_eq!(adam.clip_scale(0.25), 1.0); // norm 0.5 < 1
        let s = adam.clip_scale(100.0); // norm 10 -> scale 0.1
        assert!((s - 0.1).abs() < 1e-6);
        let unclipped = Adam::new(0.001).with_max_grad_norm(None);
        assert_eq!(unclipped.clip_scale(1e12), 1.0);
    }

    #[test]
    fn bias_correction_is_applied_on_first_step() {
        // With bias correction, the very first Adam step moves the
        // parameter by approximately -lr regardless of gradient scale.
        let mut store = ParamStore::new();
        let id = store.register("x", Tensor2::scalar(1.0));
        let mut adam = Adam::new(0.1).with_max_grad_norm(None);
        let mut sess = Session::new();
        let x = sess.param(&store, id);
        let loss = sess.tape.scale(x, 1000.0);
        let loss = sess.tape.sum_all(loss);
        sess.step(loss, &mut store, &mut adam);
        let moved = 1.0 - store.value(id).get(0, 0);
        assert!((moved - 0.1).abs() < 1e-3, "moved {moved}");
    }
}
