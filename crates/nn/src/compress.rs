//! Model compression: magnitude pruning and 8-bit quantization.
//!
//! Section 5.4 of the paper reports that 80% of Voyager's weights can be
//! pruned and the rest quantized from 32 to 8 bits with < 1% accuracy
//! loss, making the final model 110–200× smaller than Delta-LSTM and
//! 5–10× smaller than the metadata of conventional temporal prefetchers.
//! This module implements both transforms plus the byte accounting used
//! by the Fig. 17 experiment.

use voyager_tensor::Tensor2;

use crate::ParamStore;

/// Zeroes the `fraction` of weights with the smallest magnitude, computed
/// globally across all parameters in the store.
///
/// Returns the number of weights that were set to zero.
///
/// # Panics
///
/// Panics unless `0.0 <= fraction <= 1.0`.
pub fn prune_magnitude(store: &mut ParamStore, fraction: f32) -> usize {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must be in [0, 1]"
    );
    let mut magnitudes: Vec<f32> = Vec::with_capacity(store.num_scalars());
    for (_, _, value) in store.iter() {
        magnitudes.extend(value.as_slice().iter().map(|v| v.abs()));
    }
    if magnitudes.is_empty() {
        return 0;
    }
    let k = ((magnitudes.len() as f64) * fraction as f64).floor() as usize;
    if k == 0 {
        return 0;
    }
    let threshold = {
        let mut m = magnitudes;
        m.sort_by(f32::total_cmp);
        m[k - 1]
    };
    let ids: Vec<_> = store.iter().map(|(id, _, _)| id).collect();
    let mut zeroed = 0;
    for id in ids {
        let value = store.value_mut(id);
        for v in value.as_mut_slice() {
            // `<=` can zero slightly more than k elements when magnitudes
            // tie at the threshold; pruning is approximate by nature.
            if v.abs() <= threshold && *v != 0.0 {
                *v = 0.0;
                zeroed += 1;
            }
        }
    }
    zeroed
}

/// Fraction of exactly-zero weights in the store.
pub fn sparsity(store: &ParamStore) -> f32 {
    let total = store.num_scalars();
    if total == 0 {
        return 0.0;
    }
    let zeros: usize = store
        .iter()
        .map(|(_, _, v)| v.as_slice().iter().filter(|&&x| x == 0.0).count())
        .sum();
    zeros as f32 / total as f32
}

/// A tensor quantized to 8-bit integers with a per-tensor affine scheme:
/// `value ≈ scale * (q - zero_point)`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedTensor {
    rows: usize,
    cols: usize,
    scale: f32,
    zero_point: i32,
    data: Vec<i8>,
}

impl QuantizedTensor {
    /// Quantizes a tensor to int8 with a symmetric-range affine mapping
    /// covering `[min, max]` of the tensor's values.
    pub fn quantize(t: &Tensor2) -> Self {
        let (rows, cols) = t.shape();
        let (mut min, mut max) = (0.0f32, 0.0f32);
        for &v in t.as_slice() {
            min = min.min(v);
            max = max.max(v);
        }
        let range = (max - min).max(1e-12);
        let scale = range / 255.0;
        let zero_point = (-128.0 - min / scale).round() as i32;
        let data = t
            .as_slice()
            .iter()
            .map(|&v| ((v / scale).round() as i32 + zero_point).clamp(-128, 127) as i8)
            .collect();
        QuantizedTensor {
            rows,
            cols,
            scale,
            zero_point,
            data,
        }
    }

    /// Reconstructs an `f32` tensor (lossy).
    pub fn dequantize(&self) -> Tensor2 {
        Tensor2::from_vec(
            self.rows,
            self.cols,
            self.data
                .iter()
                .map(|&q| (q as i32 - self.zero_point) as f32 * self.scale)
                .collect(),
        )
    }

    /// Shape of the original tensor.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Storage size in bytes (1 byte per weight plus scale/zero-point).
    pub fn size_bytes(&self) -> usize {
        self.data.len() + 8
    }
}

/// Quantizes every parameter in the store in place (quantize then
/// dequantize), simulating int8 deployment while keeping the f32
/// interface. Returns the maximum absolute reconstruction error.
pub fn quantize_store_inplace(store: &mut ParamStore) -> f32 {
    let ids: Vec<_> = store.iter().map(|(id, _, _)| id).collect();
    let mut max_err = 0.0f32;
    for id in ids {
        let original = store.value(id).clone();
        let q = QuantizedTensor::quantize(&original);
        let restored = q.dequantize();
        for (&a, &b) in original.as_slice().iter().zip(restored.as_slice()) {
            max_err = max_err.max((a - b).abs());
        }
        *store.value_mut(id) = restored;
    }
    max_err
}

/// Storage accounting for a model under different deployment formats.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelSize {
    /// Total scalar parameter count.
    pub params: usize,
    /// Dense f32 storage in bytes.
    pub dense_f32: usize,
    /// Sparse storage in bytes after pruning: non-zeros as (4-byte
    /// index, 4-byte value) pairs.
    pub sparse_f32: usize,
    /// Sparse + int8 storage in bytes: non-zeros as (4-byte index,
    /// 1-byte value) pairs plus per-tensor scale/zero-point.
    pub sparse_int8: usize,
}

/// Computes [`ModelSize`] for the store's current contents.
pub fn model_size(store: &ParamStore) -> ModelSize {
    let params = store.num_scalars();
    let nonzero: usize = store
        .iter()
        .map(|(_, _, v)| v.as_slice().iter().filter(|&&x| x != 0.0).count())
        .sum();
    let tensors = store.len();
    ModelSize {
        params,
        dense_f32: params * 4,
        sparse_f32: nonzero * 8,
        sparse_int8: nonzero * 5 + tensors * 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voyager_tensor::rng::{SeedableRng, StdRng};

    #[test]
    fn prune_removes_requested_fraction() {
        let mut store = ParamStore::new();
        let data: Vec<f32> = (1..=100).map(|i| i as f32).collect();
        store.register("w", Tensor2::from_vec(10, 10, data));
        let zeroed = prune_magnitude(&mut store, 0.8);
        assert_eq!(zeroed, 80);
        assert!((sparsity(&store) - 0.8).abs() < 1e-6);
        // The largest weights survive.
        assert_eq!(store.value(crate::ParamId(0)).get(9, 9), 100.0);
        assert_eq!(store.value(crate::ParamId(0)).get(0, 0), 0.0);
    }

    #[test]
    fn prune_zero_fraction_is_noop() {
        let mut store = ParamStore::new();
        store.register("w", Tensor2::full(2, 2, 1.0));
        assert_eq!(prune_magnitude(&mut store, 0.0), 0);
        assert_eq!(sparsity(&store), 0.0);
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn prune_rejects_bad_fraction() {
        let mut store = ParamStore::new();
        prune_magnitude(&mut store, 1.5);
    }

    #[test]
    fn quantize_roundtrip_error_is_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor2::uniform(8, 8, 2.0, &mut rng);
        let q = QuantizedTensor::quantize(&t);
        assert_eq!(q.shape(), (8, 8));
        let r = q.dequantize();
        // Max error is about one quantization bucket: range/255.
        let bucket = 4.0 / 255.0;
        for (&a, &b) in t.as_slice().iter().zip(r.as_slice()) {
            assert!((a - b).abs() <= bucket * 1.5, "error too large: {a} vs {b}");
        }
    }

    #[test]
    fn quantize_preserves_zero_exactly_for_pruned_models() {
        // Pruned weights must stay exactly zero after dequantization so
        // sparsity (and sparse storage size) is preserved.
        let t = Tensor2::from_rows(&[&[0.0, 1.0, -1.0, 0.0]]);
        let q = QuantizedTensor::quantize(&t);
        let r = q.dequantize();
        assert!(r.get(0, 0).abs() < 1e-2);
        assert!(r.get(0, 3).abs() < 1e-2);
    }

    #[test]
    fn model_size_shrinks_with_pruning_and_quantization() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut store = ParamStore::new();
        store.register("w", Tensor2::uniform(100, 100, 1.0, &mut rng));
        let before = model_size(&store);
        assert_eq!(before.params, 10_000);
        assert_eq!(before.dense_f32, 40_000);
        prune_magnitude(&mut store, 0.8);
        let after = model_size(&store);
        assert!(after.sparse_f32 < before.dense_f32 / 2);
        assert!(after.sparse_int8 < after.sparse_f32);
    }

    #[test]
    fn quantize_store_inplace_reports_small_error() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut store = ParamStore::new();
        store.register("a", Tensor2::uniform(10, 10, 0.5, &mut rng));
        store.register("b", Tensor2::uniform(5, 5, 0.5, &mut rng));
        let err = quantize_store_inplace(&mut store);
        assert!(
            err > 0.0 && err < 0.01,
            "unexpected quantization error {err}"
        );
    }
}
