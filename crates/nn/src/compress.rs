//! Model compression: magnitude pruning and 8-bit quantization.
//!
//! Section 5.4 of the paper reports that 80% of Voyager's weights can be
//! pruned and the rest quantized from 32 to 8 bits with < 1% accuracy
//! loss, making the final model 110–200× smaller than Delta-LSTM and
//! 5–10× smaller than the metadata of conventional temporal prefetchers.
//! This module implements both transforms plus the byte accounting used
//! by the Fig. 17 experiment.

use voyager_tensor::Tensor2;

use crate::ParamStore;

/// Zeroes the `fraction` of weights with the smallest magnitude, computed
/// globally across all parameters in the store.
///
/// Returns the number of weights that were set to zero.
///
/// # Panics
///
/// Panics unless `0.0 <= fraction <= 1.0`.
pub fn prune_magnitude(store: &mut ParamStore, fraction: f32) -> usize {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must be in [0, 1]"
    );
    let mut magnitudes: Vec<f32> = Vec::with_capacity(store.num_scalars());
    for (_, _, value) in store.iter() {
        magnitudes.extend(value.as_slice().iter().map(|v| v.abs()));
    }
    if magnitudes.is_empty() {
        return 0;
    }
    let k = ((magnitudes.len() as f64) * fraction as f64).floor() as usize;
    if k == 0 {
        return 0;
    }
    let threshold = {
        let mut m = magnitudes;
        m.sort_by(f32::total_cmp);
        m[k - 1]
    };
    let ids: Vec<_> = store.iter().map(|(id, _, _)| id).collect();
    let mut zeroed = 0;
    for id in ids {
        let value = store.value_mut(id);
        for v in value.as_mut_slice() {
            // `<=` can zero slightly more than k elements when magnitudes
            // tie at the threshold; pruning is approximate by nature.
            if v.abs() <= threshold && *v != 0.0 {
                *v = 0.0;
                zeroed += 1;
            }
        }
    }
    zeroed
}

/// Fraction of exactly-zero weights in the store.
pub fn sparsity(store: &ParamStore) -> f32 {
    let total = store.num_scalars();
    if total == 0 {
        return 0.0;
    }
    let zeros: usize = store
        .iter()
        .map(|(_, _, v)| v.as_slice().iter().filter(|&&x| x == 0.0).count())
        .sum();
    zeros as f32 / total as f32
}

/// A tensor quantized to 8-bit integers with a per-tensor affine scheme:
/// `value ≈ scale * (q - zero_point)`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedTensor {
    rows: usize,
    cols: usize,
    scale: f32,
    zero_point: i32,
    data: Vec<i8>,
}

impl QuantizedTensor {
    /// Quantizes a tensor to int8 with a symmetric-range affine mapping
    /// covering `[min, max]` of the tensor's finite values.
    ///
    /// The range is anchored to include `0.0` so exact zeros (pruned
    /// weights) land on the zero point and dequantize back to exactly
    /// `0.0`. Degenerate inputs are handled explicitly: all-zero /
    /// constant tensors get a small positive scale (instead of an
    /// epsilon-sized one), and the range is computed in `f64` so
    /// tensors spanning `±f32::MAX` cannot overflow it to infinity and
    /// poison the scale. The resulting scale is always finite and
    /// positive.
    pub fn quantize(t: &Tensor2) -> Self {
        let (rows, cols) = t.shape();
        let (mut min, mut max) = (0.0f64, 0.0f64);
        for &v in t.as_slice() {
            if v.is_finite() {
                min = min.min(v as f64);
                max = max.max(v as f64);
            }
        }
        let range = max - min;
        let scale = if range > 0.0 {
            (range / 255.0) as f32
        } else {
            // All-zero (or empty) tensor: any positive scale round-trips
            // the all-zero codes exactly.
            1.0 / 255.0
        };
        let zero_point = (-128.0 - min / scale as f64).round().clamp(-128.0, 127.0) as i32;
        let data = t
            .as_slice()
            .iter()
            .map(|&v| {
                let q = (v as f64 / scale as f64).round() as i64 + zero_point as i64;
                q.clamp(-128, 127) as i8
            })
            .collect();
        QuantizedTensor {
            rows,
            cols,
            scale,
            zero_point,
            data,
        }
    }

    /// Reconstructs an `f32` tensor (lossy). The product is formed in
    /// `f64` and clamped into the finite `f32` range, so extreme-valued
    /// tensors never dequantize to infinity.
    pub fn dequantize(&self) -> Tensor2 {
        Tensor2::from_vec(
            self.rows,
            self.cols,
            self.data
                .iter()
                .map(|&q| {
                    let v = (q as i32 - self.zero_point) as f64 * self.scale as f64;
                    v.clamp(f32::MIN as f64, f32::MAX as f64) as f32
                })
                .collect(),
        )
    }

    /// Shape of the original tensor.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Per-tensor dequantization scale (always finite and positive).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Affine zero point: the code that maps back to `0.0`.
    pub fn zero_point(&self) -> i32 {
        self.zero_point
    }

    /// Quantized codes, row-major.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Storage size in bytes (1 byte per weight plus scale/zero-point).
    pub fn size_bytes(&self) -> usize {
        self.data.len() + 8
    }
}

/// Quantizes every parameter in the store in place (quantize then
/// dequantize), simulating int8 deployment while keeping the f32
/// interface. Returns the maximum absolute reconstruction error.
pub fn quantize_store_inplace(store: &mut ParamStore) -> f32 {
    let ids: Vec<_> = store.iter().map(|(id, _, _)| id).collect();
    let mut max_err = 0.0f32;
    for id in ids {
        let original = store.value(id).clone();
        let q = QuantizedTensor::quantize(&original);
        let restored = q.dequantize();
        for (&a, &b) in original.as_slice().iter().zip(restored.as_slice()) {
            max_err = max_err.max((a - b).abs());
        }
        *store.value_mut(id) = restored;
    }
    max_err
}

/// Storage accounting for a model under different deployment formats.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelSize {
    /// Total scalar parameter count.
    pub params: usize,
    /// Dense f32 storage in bytes.
    pub dense_f32: usize,
    /// Sparse storage in bytes after pruning: non-zeros as (4-byte
    /// index, 4-byte value) pairs.
    pub sparse_f32: usize,
    /// Sparse + int8 storage in bytes: non-zeros as (4-byte index,
    /// 1-byte value) pairs plus per-tensor scale/zero-point.
    pub sparse_int8: usize,
}

/// Computes [`ModelSize`] for the store's current contents.
pub fn model_size(store: &ParamStore) -> ModelSize {
    let params = store.num_scalars();
    let nonzero: usize = store
        .iter()
        .map(|(_, _, v)| v.as_slice().iter().filter(|&&x| x != 0.0).count())
        .sum();
    let tensors = store.len();
    ModelSize {
        params,
        dense_f32: params * 4,
        sparse_f32: nonzero * 8,
        sparse_int8: nonzero * 5 + tensors * 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voyager_tensor::rng::{SeedableRng, StdRng};

    #[test]
    fn prune_removes_requested_fraction() {
        let mut store = ParamStore::new();
        let data: Vec<f32> = (1..=100).map(|i| i as f32).collect();
        store.register("w", Tensor2::from_vec(10, 10, data));
        let zeroed = prune_magnitude(&mut store, 0.8);
        assert_eq!(zeroed, 80);
        assert!((sparsity(&store) - 0.8).abs() < 1e-6);
        // The largest weights survive.
        assert_eq!(store.value(crate::ParamId(0)).get(9, 9), 100.0);
        assert_eq!(store.value(crate::ParamId(0)).get(0, 0), 0.0);
    }

    #[test]
    fn prune_zero_fraction_is_noop() {
        let mut store = ParamStore::new();
        store.register("w", Tensor2::full(2, 2, 1.0));
        assert_eq!(prune_magnitude(&mut store, 0.0), 0);
        assert_eq!(sparsity(&store), 0.0);
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn prune_rejects_bad_fraction() {
        let mut store = ParamStore::new();
        prune_magnitude(&mut store, 1.5);
    }

    #[test]
    fn quantize_roundtrip_error_is_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor2::uniform(8, 8, 2.0, &mut rng);
        let q = QuantizedTensor::quantize(&t);
        assert_eq!(q.shape(), (8, 8));
        let r = q.dequantize();
        // Max error is about one quantization bucket: range/255.
        let bucket = 4.0 / 255.0;
        for (&a, &b) in t.as_slice().iter().zip(r.as_slice()) {
            assert!((a - b).abs() <= bucket * 1.5, "error too large: {a} vs {b}");
        }
    }

    #[test]
    fn quantize_preserves_zero_exactly_for_pruned_models() {
        // Pruned weights must stay exactly zero after dequantization so
        // sparsity (and sparse storage size) is preserved.
        let t = Tensor2::from_rows(&[&[0.0, 1.0, -1.0, 0.0]]);
        let q = QuantizedTensor::quantize(&t);
        let r = q.dequantize();
        assert!(r.get(0, 0).abs() < 1e-2);
        assert!(r.get(0, 3).abs() < 1e-2);
    }

    #[test]
    fn quantize_all_zero_tensor_roundtrips_exactly() {
        let t = Tensor2::zeros(3, 4);
        let q = QuantizedTensor::quantize(&t);
        assert!(q.scale().is_finite() && q.scale() > 0.0);
        let r = q.dequantize();
        assert!(r.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn quantize_constant_tensor_roundtrips_within_one_bucket() {
        for c in [5.0f32, -3.25, 1e-6] {
            let t = Tensor2::full(2, 3, c);
            let q = QuantizedTensor::quantize(&t);
            assert!(q.scale().is_finite() && q.scale() > 0.0, "scale for {c}");
            let r = q.dequantize();
            for &v in r.as_slice() {
                assert!(v.is_finite());
                assert!((v - c).abs() <= q.scale(), "{v} vs {c}");
            }
        }
    }

    #[test]
    fn quantize_extreme_tensor_stays_finite() {
        // An f32 range computation would overflow (MAX - (-MAX) = inf)
        // and poison the scale; the f64 path must stay finite.
        let t = Tensor2::from_rows(&[&[f32::MAX, -f32::MAX, 0.0, 1.0]]);
        let q = QuantizedTensor::quantize(&t);
        assert!(q.scale().is_finite() && q.scale() > 0.0);
        let r = q.dequantize();
        let bucket = q.scale();
        for (&a, &b) in t.as_slice().iter().zip(r.as_slice()) {
            assert!(b.is_finite(), "dequantized {a} to non-finite {b}");
            assert!((a - b).abs() <= bucket * 1.5, "{a} vs {b}");
        }
        // The exact zero still round-trips to exactly zero.
        assert_eq!(r.get(0, 2), 0.0);
    }

    #[test]
    fn model_size_shrinks_with_pruning_and_quantization() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut store = ParamStore::new();
        store.register("w", Tensor2::uniform(100, 100, 1.0, &mut rng));
        let before = model_size(&store);
        assert_eq!(before.params, 10_000);
        assert_eq!(before.dense_f32, 40_000);
        prune_magnitude(&mut store, 0.8);
        let after = model_size(&store);
        assert!(after.sparse_f32 < before.dense_f32 / 2);
        assert!(after.sparse_int8 < after.sparse_f32);
    }

    #[test]
    fn quantize_store_inplace_reports_small_error() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut store = ParamStore::new();
        store.register("a", Tensor2::uniform(10, 10, 0.5, &mut rng));
        store.register("b", Tensor2::uniform(5, 5, 0.5, &mut rng));
        let err = quantize_store_inplace(&mut store);
        assert!(
            err > 0.0 && err < 0.01,
            "unexpected quantization error {err}"
        );
    }
}
