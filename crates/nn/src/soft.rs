//! Soft-label extraction from the model's output heads.
//!
//! Knowledge distillation (the tables-serving tier) does not train on
//! the hard argmax of the teacher: it wants the *distribution* the
//! teacher produced — the top-k `(token, probability)` candidates of
//! each head — so the student tables can store weighted successor
//! lists. This module turns the row-softmaxed head outputs of a
//! forward pass into exactly that, through the shared bounded-heap
//! top-k ([`voyager_tensor::topk`]) so candidate ordering matches the
//! inference paths bit for bit.

use voyager_tensor::{topk, Tensor2};

/// The teacher's soft labels for one batch row: top-k
/// `(token, probability)` candidates from the page head and from the
/// offset head, each descending by probability (ties by ascending
/// token, the shared top-k order).
#[derive(Debug, Clone, PartialEq)]
pub struct SoftLabels {
    /// Page-head candidates.
    pub pages: Vec<(u32, f32)>,
    /// Offset-head candidates.
    pub offsets: Vec<(u32, f32)>,
}

/// Reusable extractor: owns the top-k heap and pair scratch so
/// sweeping a large corpus row by row does not allocate per row beyond
/// the returned label vectors.
#[derive(Debug, Default)]
pub struct SoftLabelExtractor {
    heap: Vec<(f32, usize)>,
    pairs: Vec<(usize, f32)>,
}

impl SoftLabelExtractor {
    /// Creates an empty extractor.
    pub fn new() -> Self {
        SoftLabelExtractor::default()
    }

    /// Extracts the top-`k_page` page and top-`k_offset` offset
    /// candidates (with probabilities) for `row` of the given
    /// row-softmaxed head outputs.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds for either matrix.
    pub fn extract(
        &mut self,
        page_probs: &Tensor2,
        offset_probs: &Tensor2,
        row: usize,
        k_page: usize,
        k_offset: usize,
    ) -> SoftLabels {
        SoftLabels {
            pages: self.head_topk(page_probs, row, k_page),
            offsets: self.head_topk(offset_probs, row, k_offset),
        }
    }

    /// Top-`k` `(token, probability)` candidates of one head row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn head_topk(&mut self, probs: &Tensor2, row: usize, k: usize) -> Vec<(u32, f32)> {
        topk::topk_pairs_into(probs.row(row), k, &mut self.heap, &mut self.pairs);
        self.pairs.iter().map(|&(i, p)| (i as u32, p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_ranked_candidates_per_head() {
        let pages = Tensor2::from_rows(&[&[0.1, 0.6, 0.3], &[0.5, 0.2, 0.3]]);
        let offsets = Tensor2::from_rows(&[&[0.25, 0.75], &[0.9, 0.1]]);
        let mut ex = SoftLabelExtractor::new();
        let l0 = ex.extract(&pages, &offsets, 0, 2, 1);
        assert_eq!(l0.pages, vec![(1, 0.6), (2, 0.3)]);
        assert_eq!(l0.offsets, vec![(1, 0.75)]);
        let l1 = ex.extract(&pages, &offsets, 1, 3, 2);
        assert_eq!(l1.pages, vec![(0, 0.5), (2, 0.3), (1, 0.2)]);
        assert_eq!(l1.offsets, vec![(0, 0.9), (1, 0.1)]);
    }

    #[test]
    fn ties_keep_ascending_token_order() {
        let probs = Tensor2::from_rows(&[&[0.25, 0.25, 0.25, 0.25]]);
        let mut ex = SoftLabelExtractor::new();
        let l = ex.head_topk(&probs, 0, 3);
        assert_eq!(l, vec![(0, 0.25), (1, 0.25), (2, 0.25)]);
    }
}
