//! Two-level hierarchical softmax (the paper's Section 5.5 estimates it
//! cuts training and inference time 3–4× by shrinking the number of
//! classes evaluated per step).
//!
//! Classes are arranged in a `clusters x branch` grid. The loss
//! evaluates a softmax over clusters plus a softmax over the *target
//! cluster's* branch only — `O(clusters + branch)` instead of `O(V)` —
//! and the per-cluster leaf weights are touched sparsely, like an
//! embedding.

use voyager_tensor::rng::Rng;
use voyager_tensor::{Tensor2, Var};

use crate::{Layer, Linear, ParamId, ParamStore, Session};

/// A hierarchical softmax output head over `num_classes` classes.
#[derive(Debug, Clone)]
pub struct HierarchicalSoftmax {
    cluster_head: Linear,
    /// Leaf weights: row `c * branch + j` is the weight vector of class
    /// `c * branch + j` (gathered sparsely).
    leaf_weights: ParamId,
    hidden: usize,
    branch: usize,
    clusters: usize,
    num_classes: usize,
}

impl HierarchicalSoftmax {
    /// Builds a head mapping `hidden` features to `num_classes` classes
    /// with a roughly square hierarchy (`branch ≈ sqrt(num_classes)`).
    ///
    /// # Panics
    ///
    /// Panics if `num_classes == 0`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        hidden: usize,
        num_classes: usize,
        rng: &mut R,
    ) -> Self {
        assert!(num_classes > 0, "need at least one class");
        let branch = (num_classes as f64).sqrt().ceil() as usize;
        let clusters = num_classes.div_ceil(branch);
        let cluster_head = Linear::new(store, &format!("{name}.cluster"), hidden, clusters, rng);
        let leaf_weights = store.register(
            format!("{name}.leaves"),
            Tensor2::xavier(clusters * branch, hidden, rng),
        );
        HierarchicalSoftmax {
            cluster_head,
            leaf_weights,
            hidden,
            branch,
            clusters,
            num_classes,
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Branch factor (classes per cluster).
    pub fn branch(&self) -> usize {
        self.branch
    }

    /// Number of clusters.
    pub fn clusters(&self) -> usize {
        self.clusters
    }

    /// Classes evaluated per training sample (`clusters + branch`,
    /// versus `num_classes` for a flat softmax).
    pub fn classes_per_step(&self) -> usize {
        self.clusters + self.branch
    }

    /// Computes the mean negative log-likelihood of `targets` given
    /// hidden states `h` (`[batch, hidden]`) and returns the loss node.
    ///
    /// # Panics
    ///
    /// Panics if any target is out of range or the batch is empty.
    pub fn loss(&self, sess: &mut Session, store: &ParamStore, h: Var, targets: &[usize]) -> Var {
        let b = targets.len();
        assert!(b > 0, "empty batch");
        assert_eq!(sess.tape.value(h).rows(), b, "one hidden row per target");
        for &t in targets {
            assert!(
                t < self.num_classes,
                "target {t} out of {} classes",
                self.num_classes
            );
        }
        // Cluster-level CE.
        let cluster_logits = self.cluster_head.forward(sess, store, h);
        let cluster_targets: Vec<usize> = targets.iter().map(|&t| t / self.branch).collect();
        let cluster_loss = sess
            .tape
            .softmax_cross_entropy(cluster_logits, &cluster_targets);
        // Leaf-level CE within each sample's target cluster: the
        // cluster's `branch` weight rows are gathered sparsely and
        // scored against the hidden state with chunk_dot.
        let leaf_targets: Vec<usize> = targets.iter().map(|&t| t % self.branch).collect();
        let chunks = self.gather_chunks(sess, store, &cluster_targets);
        let leaf_logits = sess.tape.chunk_dot(h, chunks, self.branch);
        let leaf_loss = sess.tape.softmax_cross_entropy(leaf_logits, &leaf_targets);
        sess.tape.add(cluster_loss, leaf_loss)
    }

    /// Gathers, per sample, the target cluster's `branch` weight rows
    /// laid out as `[batch, branch * hidden]` chunks.
    fn gather_chunks(&self, sess: &mut Session, store: &ParamStore, clusters: &[usize]) -> Var {
        // Session::gather produces [rows, hidden]; emulate the chunk
        // layout by gathering rows in order and concatenating per
        // sample via slicing. To keep gradients sparse and the tape
        // small, gather each branch column-block as its own [batch,
        // hidden] leaf and concat along columns.
        let mut parts = Vec::with_capacity(self.branch);
        for j in 0..self.branch {
            let rows: Vec<usize> = clusters.iter().map(|&c| c * self.branch + j).collect();
            parts.push(sess.gather(store, self.leaf_weights, &rows));
        }
        sess.tape.concat_cols(&parts)
    }

    /// Predicts the top `k` classes for each hidden row by combining
    /// cluster and leaf probabilities over the `fan` most likely
    /// clusters.
    pub fn predict(
        &self,
        sess: &mut Session,
        store: &ParamStore,
        h: Var,
        k: usize,
    ) -> Vec<Vec<(usize, f32)>> {
        let b = sess.tape.value(h).rows();
        let cluster_logits = self.cluster_head.forward(sess, store, h);
        let cluster_probs_var = sess.tape.softmax_rows(cluster_logits);
        let cluster_probs = sess.tape.value(cluster_probs_var).clone();
        let fan = 2.min(self.clusters).max(1);
        let mut out: Vec<Vec<(usize, f32)>> = vec![Vec::new(); b];
        // Evaluate leaf scores for the top `fan` clusters of each row.
        for rank in 0..fan {
            let top_clusters: Vec<usize> = (0..b)
                .map(|row| cluster_probs.topk_row(row, fan)[rank.min(fan - 1)])
                .collect();
            let chunks = self.gather_chunks(sess, store, &top_clusters);
            let leaf_logits = sess.tape.chunk_dot(h, chunks, self.branch);
            let leaf_probs_var = sess.tape.softmax_rows(leaf_logits);
            let leaf_probs = sess.tape.value(leaf_probs_var);
            for (row, out_row) in out.iter_mut().enumerate() {
                let c = top_clusters[row];
                let pc = cluster_probs.get(row, c);
                for j in 0..self.branch {
                    let class = c * self.branch + j;
                    if class < self.num_classes {
                        out_row.push((class, pc * leaf_probs.get(row, j)));
                    }
                }
            }
        }
        for row in &mut out {
            row.sort_by(|a, b| b.1.total_cmp(&a.1));
            row.dedup_by_key(|e| e.0);
            row.truncate(k);
        }
        out
    }

    /// Hidden dimension.
    pub fn hidden(&self) -> usize {
        self.hidden
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Adam;
    use voyager_tensor::rng::{SeedableRng, StdRng};

    #[test]
    fn geometry_is_square_ish() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let hs = HierarchicalSoftmax::new(&mut store, "hs", 8, 100, &mut rng);
        assert_eq!(hs.num_classes(), 100);
        assert_eq!(hs.branch(), 10);
        assert_eq!(hs.clusters(), 10);
        assert_eq!(hs.classes_per_step(), 20); // vs 100 for flat softmax
    }

    #[test]
    fn learns_a_small_classification_task() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let hs = HierarchicalSoftmax::new(&mut store, "hs", 6, 30, &mut rng);
        let mut adam = Adam::new(0.05);
        // 4 fixed inputs -> 4 distinct classes spanning clusters.
        let inputs = Tensor2::from_rows(&[
            &[1.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 0.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 1.0, 0.0, 0.0],
        ]);
        let targets = [0usize, 7, 15, 29];
        let mut last = f32::MAX;
        for _ in 0..150 {
            let mut sess = Session::new();
            let h = sess.tape.leaf(inputs.clone(), false);
            let loss = hs.loss(&mut sess, &store, h, &targets);
            last = sess.tape.value(loss).get(0, 0);
            sess.step(loss, &mut store, &mut adam);
        }
        assert!(last < 0.2, "did not converge: {last}");
        let mut sess = Session::new();
        let h = sess.tape.leaf(inputs, false);
        let preds = hs.predict(&mut sess, &store, h, 1);
        for (row, &t) in preds.iter().zip(&targets) {
            assert_eq!(row[0].0, t, "wrong class: {row:?}");
        }
    }

    #[test]
    fn predict_probabilities_are_ranked_and_valid() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let hs = HierarchicalSoftmax::new(&mut store, "hs", 4, 17, &mut rng);
        let mut sess = Session::new();
        let h = sess.tape.leaf(Tensor2::uniform(2, 4, 1.0, &mut rng), false);
        let preds = hs.predict(&mut sess, &store, h, 5);
        for row in preds {
            assert!(row.len() <= 5);
            for w in row.windows(2) {
                assert!(w[0].1 >= w[1].1);
            }
            for (class, p) in row {
                assert!(class < 17);
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_target_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let hs = HierarchicalSoftmax::new(&mut store, "hs", 4, 10, &mut rng);
        let mut sess = Session::new();
        let h = sess.tape.leaf(Tensor2::zeros(1, 4), false);
        let _ = hs.loss(&mut sess, &store, h, &[10]);
    }
}
