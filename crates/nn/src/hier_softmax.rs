//! Two-level hierarchical softmax (the paper's Section 5.5 estimates it
//! cuts training and inference time 3–4× by shrinking the number of
//! classes evaluated per step).
//!
//! Classes are arranged in a `clusters x branch` grid. The loss
//! evaluates a softmax over clusters plus a softmax over the *target
//! cluster's* branch only — `O(clusters + branch)` instead of `O(V)` —
//! and the per-cluster leaf weights are touched sparsely, like an
//! embedding.

use voyager_tensor::rng::Rng;
use voyager_tensor::{Tensor2, Var};

use crate::{Layer, Linear, ParamId, ParamStore, Session};

/// Additive logit mask applied to padding slots (`-1e30`): large enough
/// that `exp` underflows to exactly 0 in the softmax and `sigmoid`
/// saturates to exactly 0 in the BCE, yet finite so `logit - PAD_MASK`
/// arithmetic never produces NaN.
pub const PAD_MASK: f32 = -1e30;

/// A hierarchical softmax output head over `num_classes` classes.
#[derive(Debug, Clone)]
pub struct HierarchicalSoftmax {
    cluster_head: Linear,
    /// Leaf weights, stored as one `[branch * hidden]` row per cluster:
    /// columns `j * hidden .. (j + 1) * hidden` of row `c` are the
    /// weight vector of class `c * branch + j`. Storing a cluster per
    /// row means the training loss gathers one *contiguous* row per
    /// (sample, positive cluster) pair — a single sparse tape leaf whose
    /// optimizer update streams whole cache lines, instead of `branch`
    /// separate gathers scattering over a `[clusters * branch, hidden]`
    /// table.
    leaf_weights: ParamId,
    hidden: usize,
    branch: usize,
    clusters: usize,
    num_classes: usize,
}

impl HierarchicalSoftmax {
    /// Builds a head mapping `hidden` features to `num_classes` classes
    /// with a roughly square hierarchy (`branch ≈ sqrt(num_classes)`).
    ///
    /// # Panics
    ///
    /// Panics if `num_classes == 0`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        hidden: usize,
        num_classes: usize,
        rng: &mut R,
    ) -> Self {
        assert!(num_classes > 0, "need at least one class");
        let branch = (num_classes as f64).sqrt().ceil() as usize;
        let clusters = num_classes.div_ceil(branch);
        Self::with_shape(store, name, hidden, num_classes, clusters, branch, rng)
    }

    /// Builds a head with an explicit `clusters x branch` grid. The grid
    /// must cover every class (`clusters * branch >= num_classes`) with
    /// no empty trailing cluster (`(clusters - 1) * branch <
    /// num_classes`), so every cluster holds at least one real class and
    /// only the last cluster may contain padding slots.
    ///
    /// # Panics
    ///
    /// Panics if the grid does not satisfy those constraints or
    /// `num_classes == 0`.
    pub fn with_shape<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        hidden: usize,
        num_classes: usize,
        clusters: usize,
        branch: usize,
        rng: &mut R,
    ) -> Self {
        assert!(num_classes > 0, "need at least one class");
        assert!(clusters > 0 && branch > 0, "grid dims must be positive");
        assert!(
            clusters * branch >= num_classes,
            "grid {clusters}x{branch} cannot hold {num_classes} classes"
        );
        assert!(
            (clusters - 1) * branch < num_classes,
            "grid {clusters}x{branch} leaves an empty trailing cluster for {num_classes} classes"
        );
        let cluster_head = Linear::new(store, &format!("{name}.cluster"), hidden, clusters, rng);
        let leaf_weights = store.register(
            format!("{name}.leaves"),
            Tensor2::xavier(clusters, branch * hidden, rng),
        );
        HierarchicalSoftmax {
            cluster_head,
            leaf_weights,
            hidden,
            branch,
            clusters,
            num_classes,
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Branch factor (classes per cluster).
    pub fn branch(&self) -> usize {
        self.branch
    }

    /// Number of clusters.
    pub fn clusters(&self) -> usize {
        self.clusters
    }

    /// Classes evaluated per training sample (`clusters + branch`,
    /// versus `num_classes` for a flat softmax).
    pub fn classes_per_step(&self) -> usize {
        self.clusters + self.branch
    }

    /// The cluster-level linear head (exposed so fast-path inference can
    /// read its weights directly from the store).
    pub fn cluster_head(&self) -> &Linear {
        &self.cluster_head
    }

    /// Id of the `[clusters, branch * hidden]` leaf weight table (one
    /// contiguous `[branch, hidden]` block per cluster row; the flat
    /// memory layout is identical to a `[clusters * branch, hidden]`
    /// class-per-row table).
    pub fn leaves_id(&self) -> ParamId {
        self.leaf_weights
    }

    /// Number of padding slots in the last cluster (`clusters * branch -
    /// num_classes`); always `< branch`.
    pub fn padding(&self) -> usize {
        self.clusters * self.branch - self.num_classes
    }

    /// Builds the additive padding mask for a batch of branch logits:
    /// row `i` gets [`PAD_MASK`] in every slot of `pair_clusters[i]` that
    /// falls outside `num_classes`, zero elsewhere. Returns `None` when
    /// the grid has no padding (the mask would be all-zero, and adding it
    /// is skipped entirely so masked and unmasked graphs stay bitwise
    /// identical).
    fn padding_mask(&self, pair_clusters: &[usize]) -> Option<Tensor2> {
        if self.padding() == 0 {
            return None;
        }
        let mut mask = Tensor2::zeros(pair_clusters.len(), self.branch);
        for (i, &c) in pair_clusters.iter().enumerate() {
            for j in 0..self.branch {
                if c * self.branch + j >= self.num_classes {
                    mask.set(i, j, PAD_MASK);
                }
            }
        }
        Some(mask)
    }

    /// Adds the padding mask (if any) to per-cluster branch logits on
    /// the tape. The mask enters as a non-differentiable leaf, so padded
    /// slots get probability ~0 and zero gradient.
    fn mask_branch_logits(&self, sess: &mut Session, logits: Var, pair_clusters: &[usize]) -> Var {
        match self.padding_mask(pair_clusters) {
            Some(mask) => {
                let m = sess.tape.leaf(mask, false);
                sess.tape.add(logits, m)
            }
            None => logits,
        }
    }

    /// Computes the mean negative log-likelihood of `targets` given
    /// hidden states `h` (`[batch, hidden]`) and returns the loss node.
    ///
    /// # Panics
    ///
    /// Panics if any target is out of range or the batch is empty.
    pub fn loss(&self, sess: &mut Session, store: &ParamStore, h: Var, targets: &[usize]) -> Var {
        let b = targets.len();
        assert!(b > 0, "empty batch");
        assert_eq!(sess.tape.value(h).rows(), b, "one hidden row per target");
        for &t in targets {
            assert!(
                t < self.num_classes,
                "target {t} out of {} classes",
                self.num_classes
            );
        }
        // Cluster-level CE.
        let cluster_logits = self.cluster_head.forward(sess, store, h);
        let cluster_targets: Vec<usize> = targets.iter().map(|&t| t / self.branch).collect();
        let cluster_loss = sess
            .tape
            .softmax_cross_entropy(cluster_logits, &cluster_targets);
        // Leaf-level CE within each sample's target cluster: the
        // cluster's `branch` weight rows are gathered sparsely and
        // scored against the hidden state with chunk_dot.
        let leaf_targets: Vec<usize> = targets.iter().map(|&t| t % self.branch).collect();
        let chunks = self.gather_chunks(sess, store, &cluster_targets);
        let leaf_logits = sess.tape.chunk_dot(h, chunks, self.branch);
        let masked = self.mask_branch_logits(sess, leaf_logits, &cluster_targets);
        let leaf_loss = sess.tape.softmax_cross_entropy(masked, &leaf_targets);
        sess.tape.add(cluster_loss, leaf_loss)
    }

    /// Multi-label loss over per-sample positive class sets: a BCE over
    /// the `[batch, clusters]` cluster multi-hot plus a BCE over the
    /// branch multi-hot of every `(sample, positive cluster)` pair. The
    /// pair expansion goes through
    /// [`select_rows`](voyager_tensor::Tape::select_rows), so a sample
    /// with positives in `p` clusters contributes `p` branch rows and
    /// the cost stays `O(clusters + pairs * branch)` regardless of
    /// vocabulary size.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty, any row has no positives, or any
    /// class is out of range.
    pub fn loss_multi(
        &self,
        sess: &mut Session,
        store: &ParamStore,
        h: Var,
        positives: &[Vec<usize>],
    ) -> Var {
        let b = positives.len();
        assert!(b > 0, "empty batch");
        assert_eq!(sess.tape.value(h).rows(), b, "one hidden row per sample");
        let mut cluster_hot = Tensor2::zeros(b, self.clusters);
        let mut pair_rows = Vec::new();
        let mut pair_clusters = Vec::new();
        for (row, pos) in positives.iter().enumerate() {
            assert!(!pos.is_empty(), "row {row} has no positive classes");
            let mut cs: Vec<usize> = pos
                .iter()
                .map(|&t| {
                    assert!(
                        t < self.num_classes,
                        "class {t} out of {} classes",
                        self.num_classes
                    );
                    t / self.branch
                })
                .collect();
            cs.sort_unstable();
            cs.dedup();
            for &c in &cs {
                cluster_hot.set(row, c, 1.0);
                pair_rows.push(row);
                pair_clusters.push(c);
            }
        }
        let cluster_logits = self.cluster_head.forward(sess, store, h);
        let cluster_loss = sess.tape.bce_with_logits(cluster_logits, &cluster_hot);
        let mut branch_hot = Tensor2::zeros(pair_rows.len(), self.branch);
        for (p, (&row, &c)) in pair_rows.iter().zip(&pair_clusters).enumerate() {
            for &t in &positives[row] {
                if t / self.branch == c {
                    branch_hot.set(p, t % self.branch, 1.0);
                }
            }
        }
        let hp = sess.tape.select_rows(h, &pair_rows);
        let chunks = self.gather_chunks(sess, store, &pair_clusters);
        let leaf_logits = sess.tape.chunk_dot(hp, chunks, self.branch);
        let masked = self.mask_branch_logits(sess, leaf_logits, &pair_clusters);
        let leaf_loss = sess.tape.bce_with_logits(masked, &branch_hot);
        sess.tape.add(cluster_loss, leaf_loss)
    }

    /// Gathers, per sample, the target cluster's `branch` weight rows
    /// laid out as `[batch, branch * hidden]` chunks. Since the leaf
    /// table stores one cluster per row this is a single contiguous
    /// gather, one sparse tape leaf, and one coalesced optimizer update.
    fn gather_chunks(&self, sess: &mut Session, store: &ParamStore, clusters: &[usize]) -> Var {
        sess.gather(store, self.leaf_weights, clusters)
    }

    /// Predicts the top `k` classes for each hidden row by combining
    /// cluster and leaf probabilities over the `fan` most likely
    /// clusters.
    pub fn predict(
        &self,
        sess: &mut Session,
        store: &ParamStore,
        h: Var,
        k: usize,
    ) -> Vec<Vec<(usize, f32)>> {
        let b = sess.tape.value(h).rows();
        let cluster_logits = self.cluster_head.forward(sess, store, h);
        let cluster_probs_var = sess.tape.softmax_rows(cluster_logits);
        let cluster_probs = sess.tape.value(cluster_probs_var).clone();
        let fan = 2.min(self.clusters).max(1);
        let mut out: Vec<Vec<(usize, f32)>> = vec![Vec::new(); b];
        // Evaluate leaf scores for the top `fan` clusters of each row.
        for rank in 0..fan {
            let top_clusters: Vec<usize> = (0..b)
                .map(|row| cluster_probs.topk_row(row, fan)[rank.min(fan - 1)])
                .collect();
            let chunks = self.gather_chunks(sess, store, &top_clusters);
            let leaf_logits = sess.tape.chunk_dot(h, chunks, self.branch);
            let masked = self.mask_branch_logits(sess, leaf_logits, &top_clusters);
            let leaf_probs_var = sess.tape.softmax_rows(masked);
            let leaf_probs = sess.tape.value(leaf_probs_var);
            for (row, out_row) in out.iter_mut().enumerate() {
                let c = top_clusters[row];
                let pc = cluster_probs.get(row, c);
                for j in 0..self.branch {
                    let class = c * self.branch + j;
                    if class < self.num_classes {
                        out_row.push((class, pc * leaf_probs.get(row, j)));
                    }
                }
            }
        }
        for row in &mut out {
            row.sort_by(|a, b| b.1.total_cmp(&a.1));
            row.dedup_by_key(|e| e.0);
            row.truncate(k);
        }
        out
    }

    /// Hidden dimension.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Full `[batch, num_classes]` class probabilities, computed
    /// directly from store values (no tape). `O(V)` per row — this
    /// exists for tests and verification, not the serving path: it pins
    /// the invariants that every real class is reachable with positive
    /// probability and that probabilities sum to one (i.e. padding slots
    /// receive exactly zero mass).
    pub fn class_probabilities(&self, store: &ParamStore, h: &Tensor2) -> Tensor2 {
        assert_eq!(h.cols(), self.hidden, "hidden width mismatch");
        let w = store.value(self.cluster_head.weight_id());
        let bias = store.value(self.cluster_head.bias_id());
        let leaves = store.value(self.leaf_weights).as_slice();
        let b = h.rows();
        let mut out = Tensor2::zeros(b, self.num_classes);
        let mut cluster_logits = vec![0.0f32; self.clusters];
        let mut branch_logits = vec![0.0f32; self.branch];
        for row in 0..b {
            let hr = h.row(row);
            for (c, logit) in cluster_logits.iter_mut().enumerate() {
                let mut acc = bias.get(0, c);
                for (i, &x) in hr.iter().enumerate() {
                    acc += x * w.get(i, c);
                }
                *logit = acc;
            }
            softmax_inplace(&mut cluster_logits);
            for (c, &pc) in cluster_logits.iter().enumerate() {
                for (j, logit) in branch_logits.iter_mut().enumerate() {
                    let class = c * self.branch + j;
                    let mut acc = if class < self.num_classes {
                        0.0
                    } else {
                        PAD_MASK
                    };
                    let lw = &leaves[class * self.hidden..][..self.hidden];
                    for (i, &x) in hr.iter().enumerate() {
                        acc += x * lw[i];
                    }
                    *logit = acc;
                }
                softmax_inplace(&mut branch_logits);
                for (j, &pb) in branch_logits.iter().enumerate() {
                    let class = c * self.branch + j;
                    if class < self.num_classes {
                        out.set(row, class, pc * pb);
                    }
                }
            }
        }
        out
    }
}

/// In-place numerically-stable softmax over a logit slice.
fn softmax_inplace(logits: &mut [f32]) {
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in logits.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in logits.iter_mut() {
        *v /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Adam;
    use voyager_tensor::rng::{SeedableRng, StdRng};

    #[test]
    fn geometry_is_square_ish() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let hs = HierarchicalSoftmax::new(&mut store, "hs", 8, 100, &mut rng);
        assert_eq!(hs.num_classes(), 100);
        assert_eq!(hs.branch(), 10);
        assert_eq!(hs.clusters(), 10);
        assert_eq!(hs.classes_per_step(), 20); // vs 100 for flat softmax
    }

    #[test]
    fn learns_a_small_classification_task() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let hs = HierarchicalSoftmax::new(&mut store, "hs", 6, 30, &mut rng);
        let mut adam = Adam::new(0.05);
        // 4 fixed inputs -> 4 distinct classes spanning clusters.
        let inputs = Tensor2::from_rows(&[
            &[1.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 0.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 1.0, 0.0, 0.0],
        ]);
        let targets = [0usize, 7, 15, 29];
        let mut last = f32::MAX;
        for _ in 0..150 {
            let mut sess = Session::new();
            let h = sess.tape.leaf(inputs.clone(), false);
            let loss = hs.loss(&mut sess, &store, h, &targets);
            last = sess.tape.value(loss).get(0, 0);
            sess.step(loss, &mut store, &mut adam);
        }
        assert!(last < 0.2, "did not converge: {last}");
        let mut sess = Session::new();
        let h = sess.tape.leaf(inputs, false);
        let preds = hs.predict(&mut sess, &store, h, 1);
        for (row, &t) in preds.iter().zip(&targets) {
            assert_eq!(row[0].0, t, "wrong class: {row:?}");
        }
    }

    #[test]
    fn predict_probabilities_are_ranked_and_valid() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let hs = HierarchicalSoftmax::new(&mut store, "hs", 4, 17, &mut rng);
        let mut sess = Session::new();
        let h = sess.tape.leaf(Tensor2::uniform(2, 4, 1.0, &mut rng), false);
        let preds = hs.predict(&mut sess, &store, h, 5);
        for row in preds {
            assert!(row.len() <= 5);
            for w in row.windows(2) {
                assert!(w[0].1 >= w[1].1);
            }
            for (class, p) in row {
                assert!(class < 17);
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn with_shape_reaches_every_class_and_sums_to_one() {
        // 23 classes in a 5x5 grid: 2 padding slots in the last cluster.
        let mut rng = StdRng::seed_from_u64(11);
        let mut store = ParamStore::new();
        let hs = HierarchicalSoftmax::with_shape(&mut store, "hs", 6, 23, 5, 5, &mut rng);
        assert_eq!(hs.clusters(), 5);
        assert_eq!(hs.branch(), 5);
        assert_eq!(hs.padding(), 2);
        let h = Tensor2::uniform(4, 6, 1.0, &mut rng);
        let probs = hs.class_probabilities(&store, &h);
        assert_eq!(probs.shape(), (4, 23));
        for row in 0..4 {
            let mut sum = 0.0;
            for class in 0..23 {
                let p = probs.get(row, class);
                assert!(p > 0.0, "class {class} unreachable in row {row}");
                sum += p;
            }
            // Padding slots masked to -inf take exactly zero mass, so
            // the real classes alone sum to one.
            assert!((sum - 1.0).abs() < 1e-5, "row {row} sums to {sum}");
        }
    }

    #[test]
    fn with_shape_rejects_bad_grids() {
        let mk = |clusters, branch| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut store = ParamStore::new();
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                HierarchicalSoftmax::with_shape(&mut store, "hs", 4, 10, clusters, branch, &mut rng)
            }))
        };
        assert!(mk(3, 3).is_err(), "grid too small must panic");
        assert!(mk(6, 2).is_err(), "empty trailing cluster must panic");
        assert!(mk(5, 2).is_ok());
        assert!(mk(2, 5).is_ok());
    }

    #[test]
    fn loss_multi_trains_multi_label_targets() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        // 21 classes in a 5x5 grid: padding exercises the mask.
        let hs = HierarchicalSoftmax::with_shape(&mut store, "hs", 6, 21, 5, 5, &mut rng);
        let mut adam = Adam::new(0.05);
        let inputs = Tensor2::from_rows(&[
            &[1.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0, 0.0, 0.0],
        ]);
        // Positives span multiple clusters per sample.
        let positives = vec![vec![0usize, 7, 20], vec![3, 12]];
        for _ in 0..200 {
            let mut sess = Session::new();
            let h = sess.tape.leaf(inputs.clone(), false);
            let loss = hs.loss_multi(&mut sess, &store, h, &positives);
            sess.step(loss, &mut store, &mut adam);
        }
        let probs = hs.class_probabilities(&store, &inputs);
        for (row, pos) in positives.iter().enumerate() {
            let neg_max = (0..21)
                .filter(|c| !pos.contains(c))
                .map(|c| probs.get(row, c))
                .fold(0.0f32, f32::max);
            for &t in pos {
                assert!(
                    probs.get(row, t) > neg_max,
                    "row {row}: positive {t} ({}) not above best negative ({neg_max})",
                    probs.get(row, t)
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "no positive classes")]
    fn loss_multi_rejects_empty_rows() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut store = ParamStore::new();
        let hs = HierarchicalSoftmax::new(&mut store, "hs", 4, 10, &mut rng);
        let mut sess = Session::new();
        let h = sess.tape.leaf(Tensor2::zeros(1, 4), false);
        let _ = hs.loss_multi(&mut sess, &store, h, &[vec![]]);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_target_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let hs = HierarchicalSoftmax::new(&mut store, "hs", 4, 10, &mut rng);
        let mut sess = Session::new();
        let h = sess.tape.leaf(Tensor2::zeros(1, 4), false);
        let _ = hs.loss(&mut sess, &store, h, &[10]);
    }
}
