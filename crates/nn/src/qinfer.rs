//! Int8 inference layers: a real quantized compute path.
//!
//! [`compress`](crate::compress) *simulates* int8 deployment
//! (quantize → dequantize → f32 GEMM); this module *computes* in int8.
//! Weights are quantized once up front with the existing per-tensor
//! affine [`QuantizedTensor`] scheme and kept as `i8` codes;
//! activations are quantized per row on the fly
//! ([`voyager_tensor::infer::quantize_rows_into`], symmetric, no zero
//! point); the matmul itself is the
//! [`gemm_i8`](voyager_tensor::kernels::gemm_i8) `i8×i8→i32` kernel.
//!
//! Dequantization folds the weight zero point out of the integer
//! accumulator using the cached per-row activation sums: with
//! activations `x[i][p] ≈ sa_i·qx[i][p]` and weights
//! `w[p][j] ≈ sw·(qw[p][j] − zw)`,
//!
//! ```text
//! out[i][j] ≈ sa_i · sw · (acc[i][j] − zw · Σ_p qx[i][p])
//! ```
//!
//! and the whole thing — integer GEMM plus scale-and-correct
//! epilogue — is one call into
//! [`gemm_i8_dequant`](voyager_tensor::kernels::gemm_i8_dequant). On
//! SIMD tiers the i32 accumulators never leave registers, so the
//! `m × n` i32 scratch buffer the old unfused sequence carried is
//! gone entirely. Output buffers are caller-provided and reused
//! across calls; the steady state performs no heap allocation.

use voyager_tensor::infer::{add_row_inplace, QuantizedRows};
use voyager_tensor::kernels::gemm_i8_dequant;
use voyager_tensor::Tensor2;

use crate::compress::QuantizedTensor;

/// An int8 weight matrix prepared for [`gemm_i8_dequant`] matmuls.
///
/// Keeps the codes in the `[in, out]` row-major orientation
/// [`QuantizedTensor`] produces, which is exactly the NN layout the
/// kernel consumes — no transpose at quantization or inference time.
#[derive(Debug, Clone)]
pub struct QuantizedMatmul {
    w: QuantizedTensor,
}

impl QuantizedMatmul {
    /// Quantizes an `[in, out]` f32 weight matrix.
    pub fn from_tensor(w: &Tensor2) -> Self {
        QuantizedMatmul {
            w: QuantizedTensor::quantize(w),
        }
    }

    /// `(in, out)` shape of the underlying weight matrix.
    pub fn shape(&self) -> (usize, usize) {
        self.w.shape()
    }

    /// Int8 storage size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.w.size_bytes()
    }

    /// Computes `out = x · w` (or `out += x · w` when `accumulate`)
    /// from pre-quantized activation rows; `out` must already be
    /// shaped `[rows, out]`. The integer GEMM and the per-row
    /// dequantization epilogue run as one fused kernel call.
    ///
    /// # Panics
    ///
    /// Panics if `x`'s columns disagree with the weight input
    /// dimension or `out` has the wrong shape.
    pub fn forward_into(&self, x: &QuantizedRows, out: &mut Tensor2, accumulate: bool) {
        let (m, k) = x.shape();
        let (wk, n) = self.w.shape();
        assert_eq!(k, wk, "quantized matmul reduction mismatch: {k} vs {wk}");
        assert_eq!(out.shape(), (m, n), "quantized matmul output shape");
        gemm_i8_dequant(
            &x.data,
            self.w.data(),
            m,
            n,
            k,
            &x.scales,
            &x.sums,
            self.w.scale(),
            self.w.zero_point(),
            out.as_mut_slice(),
            accumulate,
        );
    }

    /// Computes one output row `out = x[row] · w` from pre-quantized
    /// activation rows — the `m = 1` GEMM the hierarchical head uses to
    /// score a single shortlisted cluster's branch block.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range, the reduction dims disagree, or
    /// `out` is not `[n]`-shaped.
    pub fn forward_row_into(&self, x: &QuantizedRows, row: usize, out: &mut [f32]) {
        let (m, k) = x.shape();
        let (wk, n) = self.w.shape();
        assert!(row < m, "row {row} out of {m}");
        assert_eq!(k, wk, "quantized matmul reduction mismatch: {k} vs {wk}");
        assert_eq!(out.len(), n, "quantized matmul output width");
        gemm_i8_dequant(
            x.row(row),
            self.w.data(),
            1,
            n,
            k,
            &x.scales[row..row + 1],
            &x.sums[row..row + 1],
            self.w.scale(),
            self.w.zero_point(),
            out,
            false,
        );
    }
}

/// An int8 linear layer: quantized weights plus an f32 bias row.
#[derive(Debug, Clone)]
pub struct QuantizedLinear {
    w: QuantizedMatmul,
    bias: Vec<f32>,
}

impl QuantizedLinear {
    /// Quantizes an `[in, out]` weight matrix and captures the
    /// `[1, out]` bias (kept in f32 — it is added after
    /// dequantization, as is standard for int8 inference).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `[1, out]`.
    pub fn new(w: &Tensor2, bias: &Tensor2) -> Self {
        assert_eq!(bias.shape(), (1, w.cols()), "bias shape mismatch");
        QuantizedLinear {
            w: QuantizedMatmul::from_tensor(w),
            bias: bias.as_slice().to_vec(),
        }
    }

    /// `(in, out)` shape of the weight matrix.
    pub fn shape(&self) -> (usize, usize) {
        self.w.shape()
    }

    /// Computes `out = x · w + bias` into the caller-shaped `out`.
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch (see
    /// [`QuantizedMatmul::forward_into`]).
    pub fn forward_into(&self, x: &QuantizedRows, out: &mut Tensor2) {
        self.w.forward_into(x, out, false);
        add_row_inplace(out, &self.bias);
    }
}

/// An int8 LSTM cell for inference: both fused gate matrices
/// quantized, bias in f32, gate nonlinearities applied by the caller
/// (they stay in f32, where the tape-free engine shares the exact
/// formulas with the tape).
#[derive(Debug, Clone)]
pub struct QuantizedLstm {
    wx: QuantizedMatmul,
    wh: QuantizedMatmul,
    bias: Vec<f32>,
    hidden: usize,
}

impl QuantizedLstm {
    /// Quantizes an LSTM cell's fused `[input, 4*hidden]` /
    /// `[hidden, 4*hidden]` weights and captures its `[1, 4*hidden]`
    /// bias.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are inconsistent with `hidden`.
    pub fn new(wx: &Tensor2, wh: &Tensor2, bias: &Tensor2, hidden: usize) -> Self {
        assert_eq!(wx.cols(), 4 * hidden, "wx gate width mismatch");
        assert_eq!(wh.shape(), (hidden, 4 * hidden), "wh shape mismatch");
        assert_eq!(bias.shape(), (1, 4 * hidden), "bias shape mismatch");
        QuantizedLstm {
            wx: QuantizedMatmul::from_tensor(wx),
            wh: QuantizedMatmul::from_tensor(wh),
            bias: bias.as_slice().to_vec(),
            hidden,
        }
    }

    /// Number of hidden units.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Computes the fused gate pre-activations
    /// `gates = qx · wx + qh · wh + bias` into the caller-shaped
    /// `[batch, 4*hidden]` buffer.
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    pub fn gates_into(&self, qx: &QuantizedRows, qh: &QuantizedRows, gates: &mut Tensor2) {
        self.wx.forward_into(qx, gates, false);
        self.wh.forward_into(qh, gates, true);
        add_row_inplace(gates, &self.bias);
    }
}

/// An int8 two-level hierarchical page head: a quantized cluster
/// linear layer plus per-cluster branch blocks.
///
/// Each cluster's `[branch, hidden]` slice of the leaf table is stored
/// *transposed* (`[hidden, branch]`, quantized independently) so
/// scoring a shortlisted cluster for one activation row is a single
/// `m = 1` NN-layout [`gemm_i8_dequant`] call — no transposition at
/// inference time, and per-cluster quantization scales keep the
/// dequantization error local to each block.
#[derive(Debug, Clone)]
pub struct QuantizedHierHead {
    cluster: QuantizedLinear,
    blocks: Vec<QuantizedMatmul>,
    branch: usize,
    num_classes: usize,
}

impl QuantizedHierHead {
    /// Quantizes a hierarchical head: the `[hidden, clusters]` cluster
    /// weights + `[1, clusters]` bias and the leaf table. The leaf
    /// tensor may be shaped `[clusters, branch * hidden]` (the training
    /// layout) or `[clusters * branch, hidden]`; both describe the same
    /// flat memory and only its length is checked.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are inconsistent.
    pub fn new(
        cluster_w: &Tensor2,
        cluster_b: &Tensor2,
        leaves: &Tensor2,
        clusters: usize,
        branch: usize,
        num_classes: usize,
    ) -> Self {
        let hidden = cluster_w.rows();
        assert_eq!(cluster_w.cols(), clusters, "cluster head width mismatch");
        assert_eq!(
            leaves.len(),
            clusters * branch * hidden,
            "leaf table size mismatch"
        );
        assert!(
            num_classes <= clusters * branch && num_classes > (clusters - 1) * branch,
            "grid {clusters}x{branch} inconsistent with {num_classes} classes"
        );
        let flat = leaves.as_slice();
        let mut blocks = Vec::with_capacity(clusters);
        let mut block = Tensor2::zeros(hidden, branch);
        for c in 0..clusters {
            for j in 0..branch {
                let leaf = &flat[(c * branch + j) * hidden..][..hidden];
                for (i, &v) in leaf.iter().enumerate() {
                    block.set(i, j, v);
                }
            }
            blocks.push(QuantizedMatmul::from_tensor(&block));
        }
        QuantizedHierHead {
            cluster: QuantizedLinear::new(cluster_w, cluster_b),
            blocks,
            branch,
            num_classes,
        }
    }

    /// Number of clusters.
    pub fn clusters(&self) -> usize {
        self.blocks.len()
    }

    /// Branch factor (classes per cluster).
    pub fn branch(&self) -> usize {
        self.branch
    }

    /// Number of real classes (the grid tail beyond this is padding).
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Int8 storage of all quantized weights, in bytes.
    pub fn size_bytes(&self) -> usize {
        self.cluster.shape().0 * self.cluster.shape().1
            + self
                .blocks
                .iter()
                .map(QuantizedMatmul::size_bytes)
                .sum::<usize>()
    }

    /// Computes `[batch, clusters]` cluster logits into `out`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn cluster_logits_into(&self, x: &QuantizedRows, out: &mut Tensor2) {
        self.cluster.forward_into(x, out);
    }

    /// Computes the `branch` leaf logits of one `(activation row,
    /// cluster)` pair into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range or `out` is not
    /// `[branch]`-shaped.
    pub fn branch_logits_into(
        &self,
        x: &QuantizedRows,
        row: usize,
        cluster: usize,
        out: &mut [f32],
    ) {
        self.blocks[cluster].forward_row_into(x, row, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voyager_tensor::infer::quantize_rows_into;
    use voyager_tensor::rng::{SeedableRng, StdRng};

    fn assert_close(got: &Tensor2, want: &Tensor2, tol: f32) {
        assert_eq!(got.shape(), want.shape());
        let scale = want.as_slice().iter().fold(1.0f32, |a, &v| a.max(v.abs()));
        for (&g, &w) in got.as_slice().iter().zip(want.as_slice()) {
            assert!(
                (g - w).abs() <= tol * scale,
                "{g} vs {w} (tol {tol} x {scale})"
            );
        }
    }

    #[test]
    fn quantized_matmul_tracks_f32_reference() {
        let mut rng = StdRng::seed_from_u64(21);
        let x = Tensor2::uniform(5, 24, 1.5, &mut rng);
        let w = Tensor2::uniform(24, 12, 0.8, &mut rng);
        let qm = QuantizedMatmul::from_tensor(&w);
        let mut qx = QuantizedRows::new();
        quantize_rows_into(&x, &mut qx);
        let mut out = Tensor2::zeros(5, 12);
        qm.forward_into(&qx, &mut out, false);
        assert_close(&out, &x.matmul(&w), 0.03);
    }

    #[test]
    fn quantized_linear_adds_bias_and_reuses_buffers() {
        let mut rng = StdRng::seed_from_u64(22);
        let x = Tensor2::uniform(4, 16, 1.0, &mut rng);
        let w = Tensor2::uniform(16, 8, 0.5, &mut rng);
        let b = Tensor2::uniform(1, 8, 0.5, &mut rng);
        let ql = QuantizedLinear::new(&w, &b);
        let mut want = x.matmul(&w);
        add_row_inplace(&mut want, b.as_slice());

        let mut qx = QuantizedRows::new();
        let mut out = Tensor2::zeros(4, 8);
        quantize_rows_into(&x, &mut qx);
        ql.forward_into(&qx, &mut out);
        assert_close(&out, &want, 0.03);

        // Steady state: repeated calls never grow the output buffer
        // (the fused kernel needs no i32 scratch at all).
        let caps = out.capacity();
        for _ in 0..10 {
            quantize_rows_into(&x, &mut qx);
            ql.forward_into(&qx, &mut out);
            assert_eq!(out.capacity(), caps);
        }
    }

    #[test]
    fn quantized_lstm_gates_track_f32_reference() {
        let mut rng = StdRng::seed_from_u64(23);
        let hidden = 6;
        let x = Tensor2::uniform(3, 10, 1.0, &mut rng);
        let h = Tensor2::uniform(3, hidden, 1.0, &mut rng);
        let wx = Tensor2::uniform(10, 4 * hidden, 0.6, &mut rng);
        let wh = Tensor2::uniform(hidden, 4 * hidden, 0.6, &mut rng);
        let bias = Tensor2::uniform(1, 4 * hidden, 0.4, &mut rng);
        let qc = QuantizedLstm::new(&wx, &wh, &bias, hidden);
        assert_eq!(qc.hidden(), hidden);

        let mut want = x.matmul(&wx);
        let hw = h.matmul(&wh);
        want.add_scaled(&hw, 1.0);
        add_row_inplace(&mut want, bias.as_slice());

        let (mut qx, mut qh) = (QuantizedRows::new(), QuantizedRows::new());
        quantize_rows_into(&x, &mut qx);
        quantize_rows_into(&h, &mut qh);
        let mut gates = Tensor2::zeros(3, 4 * hidden);
        qc.gates_into(&qx, &qh, &mut gates);
        assert_close(&gates, &want, 0.05);
    }

    #[test]
    fn forward_row_matches_full_batch() {
        let mut rng = StdRng::seed_from_u64(24);
        let x = Tensor2::uniform(5, 12, 1.0, &mut rng);
        let w = Tensor2::uniform(12, 7, 0.6, &mut rng);
        let qm = QuantizedMatmul::from_tensor(&w);
        let mut qx = QuantizedRows::new();
        quantize_rows_into(&x, &mut qx);
        let mut full = Tensor2::zeros(5, 7);
        qm.forward_into(&qx, &mut full, false);
        let mut row_out = vec![0.0f32; 7];
        for r in 0..5 {
            qm.forward_row_into(&qx, r, &mut row_out);
            assert_eq!(&row_out[..], full.row(r), "row {r}");
        }
    }

    #[test]
    fn hier_head_blocks_track_f32_leaf_scores() {
        let mut rng = StdRng::seed_from_u64(25);
        let (hidden, clusters, branch, num_classes) = (10, 4, 3, 11);
        let cw = Tensor2::uniform(hidden, clusters, 0.7, &mut rng);
        let cb = Tensor2::uniform(1, clusters, 0.3, &mut rng);
        let leaves = Tensor2::uniform(clusters * branch, hidden, 0.7, &mut rng);
        let qh = QuantizedHierHead::new(&cw, &cb, &leaves, clusters, branch, num_classes);
        assert_eq!(qh.clusters(), clusters);
        assert_eq!(qh.branch(), branch);
        assert_eq!(qh.num_classes(), num_classes);
        assert!(qh.size_bytes() >= hidden * (clusters + clusters * branch));

        let x = Tensor2::uniform(3, hidden, 1.0, &mut rng);
        let mut qx = QuantizedRows::new();
        quantize_rows_into(&x, &mut qx);

        let mut cl = Tensor2::zeros(3, clusters);
        qh.cluster_logits_into(&qx, &mut cl);
        let mut want_cl = x.matmul(&cw);
        add_row_inplace(&mut want_cl, cb.as_slice());
        assert_close(&cl, &want_cl, 0.03);

        let mut out = vec![0.0f32; branch];
        for row in 0..3 {
            for c in 0..clusters {
                qh.branch_logits_into(&qx, row, c, &mut out);
                for (j, &got) in out.iter().enumerate() {
                    let want: f32 = x
                        .row(row)
                        .iter()
                        .zip(leaves.row(c * branch + j))
                        .map(|(&a, &b)| a * b)
                        .sum();
                    let scale = want.abs().max(1.0);
                    assert!(
                        (got - want).abs() <= 0.05 * scale,
                        "row {row} cluster {c} slot {j}: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_activations_produce_exact_bias() {
        // All-zero activation rows quantize to scale 0 / all-zero codes
        // and must contribute exactly nothing.
        let w = Tensor2::full(4, 3, 0.7);
        let b = Tensor2::from_rows(&[&[1.0, -2.0, 3.0]]);
        let ql = QuantizedLinear::new(&w, &b);
        let x = Tensor2::zeros(2, 4);
        let mut qx = QuantizedRows::new();
        quantize_rows_into(&x, &mut qx);
        let mut out = Tensor2::zeros(2, 3);
        ql.forward_into(&qx, &mut out);
        for i in 0..2 {
            assert_eq!(out.row(i), b.row(0));
        }
    }
}
