//! Layers used by the Voyager architecture (Fig. 2 of the paper).

use voyager_tensor::rng::Rng;
use voyager_tensor::{Tensor2, Var};

use crate::{Layer, ParamId, ParamStore, Session};

/// A fully-connected layer `y = x W + b`.
///
/// # Example
///
/// ```
/// use voyager_nn::{Layer, Linear, ParamStore, Session};
/// use voyager_tensor::Tensor2;
/// use voyager_tensor::rng::{StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut store = ParamStore::new();
/// let fc = Linear::new(&mut store, "fc", 3, 2, &mut rng);
/// let mut sess = Session::new();
/// let x = sess.tape.leaf(Tensor2::zeros(4, 3), false);
/// let y = fc.forward(&mut sess, &store, x);
/// assert_eq!(sess.tape.value(y).shape(), (4, 2));
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    weight: ParamId,
    bias: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a `in_dim -> out_dim` layer in `store` with Xavier
    /// initialisation.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut R,
    ) -> Self {
        let weight = store.register(
            format!("{name}.weight"),
            Tensor2::xavier(in_dim, out_dim, rng),
        );
        let bias = store.register(format!("{name}.bias"), Tensor2::zeros(1, out_dim));
        Linear {
            weight,
            bias,
            in_dim,
            out_dim,
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Id of the weight matrix parameter.
    pub fn weight_id(&self) -> ParamId {
        self.weight
    }

    /// Id of the bias parameter.
    pub fn bias_id(&self) -> ParamId {
        self.bias
    }
}

impl Layer<Var> for Linear {
    type Output = Var;

    /// Applies the layer to a `[batch, in_dim]` input.
    fn forward(&self, sess: &mut Session, store: &ParamStore, x: Var) -> Var {
        let w = sess.param(store, self.weight);
        let b = sess.param(store, self.bias);
        let xw = sess.tape.matmul(x, w);
        sess.tape.add_row(xw, b)
    }
}

/// A lookup-table embedding layer.
///
/// Voyager uses three of these: PC, page and offset embeddings
/// (Section 4.1). Lookups go through [`Session::gather`], so gradients
/// are sparse and only touched rows are updated.
#[derive(Debug, Clone)]
pub struct Embedding {
    table: ParamId,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Registers a `vocab x dim` embedding table initialised uniformly in
    /// `[-0.1, 0.1]`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut R,
    ) -> Self {
        let table = store.register(
            format!("{name}.table"),
            Tensor2::uniform(vocab, dim, 0.1, rng),
        );
        Embedding { table, vocab, dim }
    }

    /// Vocabulary size (number of rows).
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension (number of columns).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Id of the table parameter.
    pub fn table_id(&self) -> ParamId {
        self.table
    }
}

impl<'a> Layer<&'a [usize]> for Embedding {
    type Output = Var;

    /// Looks up a batch of ids, producing a `[ids.len(), dim]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of vocabulary.
    fn forward(&self, sess: &mut Session, store: &ParamStore, ids: &'a [usize]) -> Var {
        sess.gather(store, self.table, ids)
    }
}

/// Hidden state of an [`LstmCell`]: the `(h, c)` pair.
#[derive(Debug, Clone, Copy)]
pub struct LstmState {
    /// Hidden output vector, `[batch, hidden]`.
    pub h: Var,
    /// Cell state vector, `[batch, hidden]`.
    pub c: Var,
}

/// A standard LSTM cell (Hochreiter & Schmidhuber) with a fused gate
/// matrix, matching the page/offset LSTMs of Fig. 2 (1 layer, 256 units
/// in the paper's Table 1).
///
/// Gate layout in the fused `[.., 4*hidden]` matrices is `i, f, g, o`.
/// The forget-gate bias is initialised to 1.0, the usual trick to avoid
/// premature forgetting early in training.
#[derive(Debug, Clone)]
pub struct LstmCell {
    wx: ParamId,
    wh: ParamId,
    bias: ParamId,
    input_dim: usize,
    hidden: usize,
}

impl LstmCell {
    /// Registers an LSTM cell mapping `input_dim` inputs to `hidden`
    /// units.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        input_dim: usize,
        hidden: usize,
        rng: &mut R,
    ) -> Self {
        let wx = store.register(
            format!("{name}.wx"),
            Tensor2::xavier(input_dim, 4 * hidden, rng),
        );
        let wh = store.register(
            format!("{name}.wh"),
            Tensor2::xavier(hidden, 4 * hidden, rng),
        );
        let mut b = Tensor2::zeros(1, 4 * hidden);
        for j in hidden..2 * hidden {
            b.set(0, j, 1.0); // forget gate bias
        }
        let bias = store.register(format!("{name}.bias"), b);
        LstmCell {
            wx,
            wh,
            bias,
            input_dim,
            hidden,
        }
    }

    /// Number of hidden units.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Parameter id of the fused `[input_dim, 4*hidden]` input weights.
    pub fn wx_id(&self) -> ParamId {
        self.wx
    }

    /// Parameter id of the fused `[hidden, 4*hidden]` recurrent weights.
    pub fn wh_id(&self) -> ParamId {
        self.wh
    }

    /// Parameter id of the fused `[1, 4*hidden]` gate bias.
    pub fn bias_id(&self) -> ParamId {
        self.bias
    }

    /// Creates an all-zero initial state for a batch of the given size.
    pub fn zero_state(&self, sess: &mut Session, batch: usize) -> LstmState {
        let h = sess.tape.leaf(Tensor2::zeros(batch, self.hidden), false);
        let c = sess.tape.leaf(Tensor2::zeros(batch, self.hidden), false);
        LstmState { h, c }
    }
}

impl Layer<(Var, LstmState)> for LstmCell {
    type Output = LstmState;

    /// Advances the cell one timestep on an `(input, state)` pair.
    ///
    /// All four gate pre-activations come from a single fused
    /// [`lstm_gates`](voyager_tensor::Tape::lstm_gates) node — one
    /// batched GEMM pair per step instead of four separate matmul /
    /// add nodes.
    fn forward(
        &self,
        sess: &mut Session,
        store: &ParamStore,
        (x, state): (Var, LstmState),
    ) -> LstmState {
        let wx = sess.param(store, self.wx);
        let wh = sess.param(store, self.wh);
        let b = sess.param(store, self.bias);
        let t = &mut sess.tape;
        let gates = t.lstm_gates(x, state.h, wx, wh, b);
        let hdim = self.hidden;
        let i_raw = t.slice_cols(gates, 0, hdim);
        let f_raw = t.slice_cols(gates, hdim, hdim);
        let g_raw = t.slice_cols(gates, 2 * hdim, hdim);
        let o_raw = t.slice_cols(gates, 3 * hdim, hdim);
        let i = t.sigmoid(i_raw);
        let f = t.sigmoid(f_raw);
        let g = t.tanh(g_raw);
        let o = t.sigmoid(o_raw);
        let fc = t.mul(f, state.c);
        let ig = t.mul(i, g);
        let c = t.add(fc, ig);
        let ct = t.tanh(c);
        let h = t.mul(o, ct);
        LstmState { h, c }
    }
}

/// The paper's page-aware offset embedding (Section 4.2.2, Fig. 3).
///
/// The offset embedding of width `n_experts * dim` is interpreted as
/// `n_experts` chunk embeddings ("experts"). The page embedding acts as
/// the attention *query*; each expert chunk is both *key* and *value*.
/// Scaled dot-product scores are softmax-normalised and the output is
/// the weighted sum of expert chunks — a `[batch, dim]` page-aware
/// offset embedding. This resolves the offset-aliasing problem without
/// learning a distinct embedding per (page, offset) pair.
#[derive(Debug, Clone, Copy)]
pub struct ExpertAttention {
    n_experts: usize,
    scale: f32,
}

impl ExpertAttention {
    /// Creates the attention mechanism with `n_experts` experts and the
    /// scaling factor `f` of Eq. 9 (the paper uses `f` in `(0, 1]`; a
    /// common choice is `1/sqrt(dim)`).
    ///
    /// # Panics
    ///
    /// Panics if `n_experts == 0` or `scale <= 0`.
    pub fn new(n_experts: usize, scale: f32) -> Self {
        assert!(n_experts > 0, "need at least one expert");
        assert!(scale > 0.0, "scale must be positive");
        ExpertAttention { n_experts, scale }
    }

    /// Number of experts.
    pub fn n_experts(&self) -> usize {
        self.n_experts
    }

    /// The score scaling factor `f` of Eq. 9.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Like the [`Layer`] `forward` but also returns the attention
    /// weights (`[batch, n_experts]`), useful for inspection and
    /// tests. Follows the same `(sess, store, input)` convention; the
    /// layer has no parameters, so `store` is unused.
    pub fn forward_with_weights(
        &self,
        sess: &mut Session,
        _store: &ParamStore,
        (page, offset_experts): (Var, Var),
    ) -> (Var, Var) {
        let t = &mut sess.tape;
        let scores = t.chunk_dot(page, offset_experts, self.n_experts);
        let scaled = t.scale(scores, self.scale);
        let weights = t.softmax_rows(scaled);
        let mixed = t.chunk_weighted_sum(weights, offset_experts);
        (mixed, weights)
    }
}

impl Layer<(Var, Var)> for ExpertAttention {
    type Output = Var;

    /// Applies attention to a `(page, offset_experts)` pair: `page` is
    /// `[batch, dim]`, `offset_experts` is `[batch, n_experts * dim]`;
    /// the result is `[batch, dim]`. The layer has no parameters, so
    /// `store` is unused.
    fn forward(&self, sess: &mut Session, store: &ParamStore, input: (Var, Var)) -> Var {
        self.forward_with_weights(sess, store, input).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Adam;
    use voyager_tensor::rng::{SeedableRng, StdRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn linear_shapes() {
        let mut rng = rng();
        let mut store = ParamStore::new();
        let fc = Linear::new(&mut store, "fc", 5, 3, &mut rng);
        assert_eq!((fc.in_dim(), fc.out_dim()), (5, 3));
        let mut sess = Session::new();
        let x = sess.tape.leaf(Tensor2::zeros(2, 5), false);
        let y = fc.forward(&mut sess, &store, x);
        assert_eq!(sess.tape.value(y).shape(), (2, 3));
    }

    #[test]
    fn embedding_lookup_matches_table() {
        let mut rng = rng();
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "e", 10, 4, &mut rng);
        assert_eq!((emb.vocab(), emb.dim()), (10, 4));
        let row3: Vec<f32> = store.value(emb.table_id()).row(3).to_vec();
        let mut sess = Session::new();
        let v = emb.forward(&mut sess, &store, &[3]);
        assert_eq!(sess.tape.value(v).row(0), &row3[..]);
    }

    #[test]
    fn lstm_state_changes_with_input() {
        let mut rng = rng();
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, "lstm", 3, 4, &mut rng);
        assert_eq!(cell.hidden(), 4);
        assert_eq!(cell.input_dim(), 3);
        let mut sess = Session::new();
        let s0 = cell.zero_state(&mut sess, 1);
        let x1 = sess
            .tape
            .leaf(Tensor2::from_rows(&[&[1.0, 0.0, -1.0]]), false);
        let s1 = cell.forward(&mut sess, &store, (x1, s0));
        let x2 = sess
            .tape
            .leaf(Tensor2::from_rows(&[&[0.0, 2.0, 0.0]]), false);
        let s2 = cell.forward(&mut sess, &store, (x2, s1));
        assert_ne!(
            sess.tape.value(s1.h).as_slice(),
            sess.tape.value(s2.h).as_slice()
        );
        // Bounded activations.
        for &v in sess.tape.value(s2.h).as_slice() {
            assert!(v.abs() <= 1.0);
        }
    }

    #[test]
    fn lstm_learns_to_remember_first_input() {
        // Tiny sequence task: output after 3 steps should equal the first
        // input's sign. Verifies end-to-end gradient flow through time.
        let mut rng = rng();
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, "lstm", 1, 8, &mut rng);
        let head = Linear::new(&mut store, "head", 8, 1, &mut rng);
        let mut adam = Adam::new(0.02);
        let mut final_loss = f32::INFINITY;
        for step in 0..300 {
            let first = if step % 2 == 0 { 1.0f32 } else { -1.0 };
            let mut sess = Session::new();
            let mut state = cell.zero_state(&mut sess, 1);
            for i in 0..3 {
                let v = if i == 0 { first } else { 0.0 };
                let x = sess.tape.leaf(Tensor2::from_rows(&[&[v]]), false);
                state = cell.forward(&mut sess, &store, (x, state));
            }
            let y = head.forward(&mut sess, &store, state.h);
            let t = sess.tape.leaf(Tensor2::scalar(first), false);
            let d = sess.tape.sub(y, t);
            let sq = sess.tape.mul(d, d);
            let loss = sess.tape.mean_all(sq);
            final_loss = sess.tape.value(loss).get(0, 0);
            sess.step(loss, &mut store, &mut adam);
        }
        assert!(final_loss < 0.1, "LSTM failed to learn: loss {final_loss}");
    }

    #[test]
    fn expert_attention_output_is_convex_combination() {
        let mut sess = Session::new();
        let store = ParamStore::new();
        // Two experts with constant chunks [1,1] and [3,3]: output must
        // lie between them.
        let page = sess.tape.leaf(Tensor2::from_rows(&[&[0.2, -0.1]]), false);
        let chunks = sess
            .tape
            .leaf(Tensor2::from_rows(&[&[1.0, 1.0, 3.0, 3.0]]), false);
        let attn = ExpertAttention::new(2, 1.0);
        let (out, w) = attn.forward_with_weights(&mut sess, &store, (page, chunks));
        let wsum: f32 = sess.tape.value(w).row(0).iter().sum();
        assert!((wsum - 1.0).abs() < 1e-6);
        for &v in sess.tape.value(out).as_slice() {
            assert!((1.0..=3.0).contains(&v), "not convex: {v}");
        }
    }

    #[test]
    fn expert_attention_matches_paper_figure3_example() {
        // Fig. 3 of the paper: page embedding (0.5, -0.5), offset
        // embedding chunks (0.3,0.6), (-0.4,0.2), (0.8,-0.4), with
        // unscaled dot-product attention. The dot products are
        // (-0.15, -0.3, 0.6), so the third chunk dominates after the
        // softmax (the figure rounds its weights; the exact softmax is
        // (0.251, 0.216, 0.532) giving output (0.415, -0.019)).
        let mut sess = Session::new();
        let store = ParamStore::new();
        let page = sess.tape.leaf(Tensor2::from_rows(&[&[0.5, -0.5]]), false);
        let chunks = sess.tape.leaf(
            Tensor2::from_rows(&[&[0.3, 0.6, -0.4, 0.2, 0.8, -0.4]]),
            false,
        );
        let attn = ExpertAttention::new(3, 1.0);
        let (out, w) = attn.forward_with_weights(&mut sess, &store, (page, chunks));
        let weights = sess.tape.value(w).row(0).to_vec();
        let argmax = (0..3)
            .max_by(|&a, &b| weights[a].total_cmp(&weights[b]))
            .unwrap();
        assert_eq!(argmax, 2, "third expert should dominate: {weights:?}");
        assert!((weights[2] - 0.532).abs() < 0.01, "weights {weights:?}");
        let o = sess.tape.value(out).row(0).to_vec();
        assert!(
            (o[0] - 0.415).abs() < 0.01 && (o[1] + 0.019).abs() < 0.01,
            "out {o:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one expert")]
    fn expert_attention_rejects_zero_experts() {
        let _ = ExpertAttention::new(0, 1.0);
    }
}
