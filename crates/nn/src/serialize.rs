//! Parameter checkpointing.
//!
//! The paper's profile-driven deployment (Section 5.5) trains offline
//! and ships the weights to an inference engine "with a new ISA
//! interface". This module provides the serialization half: a compact
//! binary checkpoint of a [`ParamStore`], restorable into a store with
//! identical layout.
//!
//! Format:
//!
//! ```text
//! magic "VNNP"           4 bytes
//! version u32 LE
//! tensor count u32 LE
//! per tensor: name len u32 LE, name bytes,
//!             rows u32 LE, cols u32 LE, rows*cols f32 LE values
//! ```

use std::io::{self, Read, Write};

use voyager_tensor::Tensor2;

use crate::{Adam, AdamState, ParamStore};

const MAGIC: &[u8; 4] = b"VNNP";
const VERSION: u32 = 1;

const TRAIN_MAGIC: &[u8; 4] = b"VNNT";
const TRAIN_VERSION: u32 = 1;

/// Errors returned by [`load_params`].
#[derive(Debug)]
pub enum LoadParamsError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a parameter checkpoint.
    BadMagic,
    /// Unsupported version.
    BadVersion(u32),
    /// Checkpoint layout does not match the target store (wrong tensor
    /// count, name, or shape).
    LayoutMismatch(String),
}

impl std::fmt::Display for LoadParamsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadParamsError::Io(e) => write!(f, "i/o error: {e}"),
            LoadParamsError::BadMagic => write!(f, "not a parameter checkpoint (bad magic)"),
            LoadParamsError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            LoadParamsError::LayoutMismatch(what) => write!(f, "layout mismatch: {what}"),
        }
    }
}

impl std::error::Error for LoadParamsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadParamsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LoadParamsError {
    fn from(e: io::Error) -> Self {
        LoadParamsError::Io(e)
    }
}

/// Writes every parameter of `store` to `writer`. A `&mut` reference
/// may be passed for `writer`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_params<W: Write>(mut writer: W, store: &ParamStore) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    writer.write_all(&(store.len() as u32).to_le_bytes())?;
    for (_, name, value) in store.iter() {
        writer.write_all(&(name.len() as u32).to_le_bytes())?;
        writer.write_all(name.as_bytes())?;
        let (rows, cols) = value.shape();
        writer.write_all(&(rows as u32).to_le_bytes())?;
        writer.write_all(&(cols as u32).to_le_bytes())?;
        for &v in value.as_slice() {
            writer.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Restores a checkpoint written by [`save_params`] into `store`, which
/// must have been built by the same model constructor (identical
/// tensor names and shapes, in order). A `&mut` reference may be passed
/// for `reader`.
///
/// # Errors
///
/// Returns [`LoadParamsError`] on malformed input or layout mismatch;
/// the store is left partially updated only on I/O failure mid-stream.
pub fn load_params<R: Read>(mut reader: R, store: &mut ParamStore) -> Result<(), LoadParamsError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(LoadParamsError::BadMagic);
    }
    let version = read_u32(&mut reader)?;
    if version != VERSION {
        return Err(LoadParamsError::BadVersion(version));
    }
    let count = read_u32(&mut reader)? as usize;
    if count != store.len() {
        return Err(LoadParamsError::LayoutMismatch(format!(
            "checkpoint has {count} tensors, store has {}",
            store.len()
        )));
    }
    let ids: Vec<_> = store.iter().map(|(id, _, _)| id).collect();
    for id in ids {
        let name_len = read_u32(&mut reader)? as usize;
        let mut name = vec![0u8; name_len];
        reader.read_exact(&mut name)?;
        let name = String::from_utf8_lossy(&name).into_owned();
        if name != store.name(id) {
            return Err(LoadParamsError::LayoutMismatch(format!(
                "expected tensor {:?}, found {:?}",
                store.name(id),
                name
            )));
        }
        let rows = read_u32(&mut reader)? as usize;
        let cols = read_u32(&mut reader)? as usize;
        if (rows, cols) != store.value(id).shape() {
            return Err(LoadParamsError::LayoutMismatch(format!(
                "tensor {name:?}: checkpoint {rows}x{cols}, store {:?}",
                store.value(id).shape()
            )));
        }
        let mut data = vec![0f32; rows * cols];
        for v in &mut data {
            let mut buf = [0u8; 4];
            reader.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        *store.value_mut(id) = Tensor2::from_vec(rows, cols, data);
    }
    Ok(())
}

/// Writes a *training-state* checkpoint: the parameters of `store`
/// (exactly as [`save_params`]) plus the optimizer's mutable state
/// (learning rate, step count, Adam moments), so training can resume
/// where it left off.
///
/// Format:
///
/// ```text
/// magic "VNNT"            4 bytes
/// version u32 LE
/// <save_params payload>
/// lr f32 LE, steps u64 LE, moment count u32 LE
/// per moment: param index u32 LE, rows u32 LE, cols u32 LE,
///             rows*cols f32 LE first-moment values,
///             rows*cols f32 LE second-moment values
/// ```
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_training_state<W: Write>(
    mut writer: W,
    store: &ParamStore,
    adam: &Adam,
) -> io::Result<()> {
    writer.write_all(TRAIN_MAGIC)?;
    writer.write_all(&TRAIN_VERSION.to_le_bytes())?;
    save_params(&mut writer, store)?;
    let state = adam.export_state();
    writer.write_all(&state.lr.to_le_bytes())?;
    writer.write_all(&state.steps.to_le_bytes())?;
    writer.write_all(&(state.moments.len() as u32).to_le_bytes())?;
    for (idx, m, v) in &state.moments {
        writer.write_all(&(*idx as u32).to_le_bytes())?;
        let (rows, cols) = m.shape();
        writer.write_all(&(rows as u32).to_le_bytes())?;
        writer.write_all(&(cols as u32).to_le_bytes())?;
        for &x in m.as_slice() {
            writer.write_all(&x.to_le_bytes())?;
        }
        for &x in v.as_slice() {
            writer.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Restores a checkpoint written by [`save_training_state`] into
/// `store` and `adam`, both of which must have been built by the same
/// constructors as at save time.
///
/// # Errors
///
/// Returns [`LoadParamsError`] on malformed input or layout mismatch.
pub fn load_training_state<R: Read>(
    mut reader: R,
    store: &mut ParamStore,
    adam: &mut Adam,
) -> Result<(), LoadParamsError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != TRAIN_MAGIC {
        return Err(LoadParamsError::BadMagic);
    }
    let version = read_u32(&mut reader)?;
    if version != TRAIN_VERSION {
        return Err(LoadParamsError::BadVersion(version));
    }
    load_params(&mut reader, store)?;
    let lr = f32::from_le_bytes(read_array(&mut reader)?);
    let steps = u64::from_le_bytes(read_array(&mut reader)?);
    let count = read_u32(&mut reader)? as usize;
    let mut moments = Vec::with_capacity(count);
    for _ in 0..count {
        let idx = read_u32(&mut reader)? as usize;
        if idx >= store.len() {
            return Err(LoadParamsError::LayoutMismatch(format!(
                "moment for parameter {idx}, store has {}",
                store.len()
            )));
        }
        let rows = read_u32(&mut reader)? as usize;
        let cols = read_u32(&mut reader)? as usize;
        let expect = store.value(crate::ParamId(idx)).shape();
        if (rows, cols) != expect {
            return Err(LoadParamsError::LayoutMismatch(format!(
                "moment {idx}: checkpoint {rows}x{cols}, parameter is {expect:?}"
            )));
        }
        let read_tensor = |reader: &mut R| -> Result<Tensor2, LoadParamsError> {
            let mut data = vec![0f32; rows * cols];
            for x in &mut data {
                *x = f32::from_le_bytes(read_array(reader)?);
            }
            Ok(Tensor2::from_vec(rows, cols, data))
        };
        let m = read_tensor(&mut reader)?;
        let v = read_tensor(&mut reader)?;
        moments.push((idx, m, v));
    }
    adam.import_state(AdamState { lr, steps, moments });
    Ok(())
}

fn read_array<const N: usize, R: Read>(reader: &mut R) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    reader.read_exact(&mut buf)?;
    Ok(buf)
}

fn read_u32<R: Read>(reader: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    reader.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Linear;
    use voyager_tensor::rng::{SeedableRng, StdRng};

    fn store_pair() -> (ParamStore, ParamStore) {
        let mut rng = StdRng::seed_from_u64(7);
        let mut a = ParamStore::new();
        let _ = Linear::new(&mut a, "fc", 3, 2, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(99);
        let mut b = ParamStore::new();
        let _ = Linear::new(&mut b, "fc", 3, 2, &mut rng2);
        (a, b)
    }

    #[test]
    fn roundtrip_restores_exact_values() {
        let (a, mut b) = store_pair();
        let mut buf = Vec::new();
        save_params(&mut buf, &a).unwrap();
        load_params(buf.as_slice(), &mut b).unwrap();
        for ((_, _, va), (_, _, vb)) in a.iter().zip(b.iter()) {
            assert_eq!(va.as_slice(), vb.as_slice());
        }
    }

    #[test]
    fn layout_mismatch_is_detected() {
        let (a, _) = store_pair();
        let mut buf = Vec::new();
        save_params(&mut buf, &a).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut other = ParamStore::new();
        let _ = Linear::new(&mut other, "different", 3, 2, &mut rng);
        let err = load_params(buf.as_slice(), &mut other).unwrap_err();
        assert!(matches!(err, LoadParamsError::LayoutMismatch(_)), "{err}");
    }

    #[test]
    fn wrong_shape_is_detected() {
        let (a, _) = store_pair();
        let mut buf = Vec::new();
        save_params(&mut buf, &a).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut other = ParamStore::new();
        let _ = Linear::new(&mut other, "fc", 4, 2, &mut rng);
        assert!(matches!(
            load_params(buf.as_slice(), &mut other).unwrap_err(),
            LoadParamsError::LayoutMismatch(_)
        ));
    }

    #[test]
    fn training_state_roundtrip_resumes_identically() {
        use crate::{Adam, Session};
        // Train a few steps, checkpoint, train more on both the original
        // and a restored copy: they must stay bitwise identical.
        let (mut store, _) = store_pair();
        let mut adam = Adam::new(0.05);
        let x = Tensor2::from_rows(&[&[1.0, 0.5, -0.5]]);
        let step = |store: &mut ParamStore, adam: &mut Adam| {
            let mut sess = Session::new();
            let ids: Vec<_> = store.iter().map(|(id, _, _)| id).collect();
            let w = sess.param(store, ids[0]);
            let xv = sess.tape.leaf(x.clone(), false);
            let y = sess.tape.matmul(xv, w);
            let sq = sess.tape.mul(y, y);
            let loss = sess.tape.sum_all(sq);
            sess.step(loss, store, adam);
        };
        for _ in 0..3 {
            step(&mut store, &mut adam);
        }
        let mut buf = Vec::new();
        save_training_state(&mut buf, &store, &adam).unwrap();

        let (mut restored, _) = store_pair();
        let mut radam = Adam::new(0.05);
        load_training_state(buf.as_slice(), &mut restored, &mut radam).unwrap();
        assert_eq!(radam.steps(), adam.steps());

        for _ in 0..3 {
            step(&mut store, &mut adam);
            step(&mut restored, &mut radam);
        }
        for ((_, _, va), (_, _, vb)) in store.iter().zip(restored.iter()) {
            assert_eq!(va.as_slice(), vb.as_slice());
        }
    }

    #[test]
    fn training_state_rejects_params_only_checkpoint() {
        let (store, mut other) = store_pair();
        let mut buf = Vec::new();
        save_params(&mut buf, &store).unwrap();
        let mut adam = Adam::new(0.05);
        assert!(matches!(
            load_training_state(buf.as_slice(), &mut other, &mut adam).unwrap_err(),
            LoadParamsError::BadMagic
        ));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let (_, mut b) = store_pair();
        assert!(matches!(
            load_params(&b"XXXX...."[..], &mut b).unwrap_err(),
            LoadParamsError::BadMagic
        ));
    }
}
