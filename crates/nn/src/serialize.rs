//! Parameter checkpointing.
//!
//! The paper's profile-driven deployment (Section 5.5) trains offline
//! and ships the weights to an inference engine "with a new ISA
//! interface". This module provides the serialization half: a compact
//! binary checkpoint of a [`ParamStore`], restorable into a store with
//! identical layout.
//!
//! Format:
//!
//! ```text
//! magic "VNNP"           4 bytes
//! version u32 LE
//! tensor count u32 LE
//! per tensor: name len u32 LE, name bytes,
//!             rows u32 LE, cols u32 LE, rows*cols f32 LE values
//! ```

use std::io::{self, Read, Write};

use voyager_tensor::Tensor2;

use crate::ParamStore;

const MAGIC: &[u8; 4] = b"VNNP";
const VERSION: u32 = 1;

/// Errors returned by [`load_params`].
#[derive(Debug)]
pub enum LoadParamsError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a parameter checkpoint.
    BadMagic,
    /// Unsupported version.
    BadVersion(u32),
    /// Checkpoint layout does not match the target store (wrong tensor
    /// count, name, or shape).
    LayoutMismatch(String),
}

impl std::fmt::Display for LoadParamsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadParamsError::Io(e) => write!(f, "i/o error: {e}"),
            LoadParamsError::BadMagic => write!(f, "not a parameter checkpoint (bad magic)"),
            LoadParamsError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            LoadParamsError::LayoutMismatch(what) => write!(f, "layout mismatch: {what}"),
        }
    }
}

impl std::error::Error for LoadParamsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadParamsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LoadParamsError {
    fn from(e: io::Error) -> Self {
        LoadParamsError::Io(e)
    }
}

/// Writes every parameter of `store` to `writer`. A `&mut` reference
/// may be passed for `writer`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_params<W: Write>(mut writer: W, store: &ParamStore) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    writer.write_all(&(store.len() as u32).to_le_bytes())?;
    for (_, name, value) in store.iter() {
        writer.write_all(&(name.len() as u32).to_le_bytes())?;
        writer.write_all(name.as_bytes())?;
        let (rows, cols) = value.shape();
        writer.write_all(&(rows as u32).to_le_bytes())?;
        writer.write_all(&(cols as u32).to_le_bytes())?;
        for &v in value.as_slice() {
            writer.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Restores a checkpoint written by [`save_params`] into `store`, which
/// must have been built by the same model constructor (identical
/// tensor names and shapes, in order). A `&mut` reference may be passed
/// for `reader`.
///
/// # Errors
///
/// Returns [`LoadParamsError`] on malformed input or layout mismatch;
/// the store is left partially updated only on I/O failure mid-stream.
pub fn load_params<R: Read>(mut reader: R, store: &mut ParamStore) -> Result<(), LoadParamsError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(LoadParamsError::BadMagic);
    }
    let version = read_u32(&mut reader)?;
    if version != VERSION {
        return Err(LoadParamsError::BadVersion(version));
    }
    let count = read_u32(&mut reader)? as usize;
    if count != store.len() {
        return Err(LoadParamsError::LayoutMismatch(format!(
            "checkpoint has {count} tensors, store has {}",
            store.len()
        )));
    }
    let ids: Vec<_> = store.iter().map(|(id, _, _)| id).collect();
    for id in ids {
        let name_len = read_u32(&mut reader)? as usize;
        let mut name = vec![0u8; name_len];
        reader.read_exact(&mut name)?;
        let name = String::from_utf8_lossy(&name).into_owned();
        if name != store.name(id) {
            return Err(LoadParamsError::LayoutMismatch(format!(
                "expected tensor {:?}, found {:?}",
                store.name(id),
                name
            )));
        }
        let rows = read_u32(&mut reader)? as usize;
        let cols = read_u32(&mut reader)? as usize;
        if (rows, cols) != store.value(id).shape() {
            return Err(LoadParamsError::LayoutMismatch(format!(
                "tensor {name:?}: checkpoint {rows}x{cols}, store {:?}",
                store.value(id).shape()
            )));
        }
        let mut data = vec![0f32; rows * cols];
        for v in &mut data {
            let mut buf = [0u8; 4];
            reader.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        *store.value_mut(id) = Tensor2::from_vec(rows, cols, data);
    }
    Ok(())
}

fn read_u32<R: Read>(reader: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    reader.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Linear;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn store_pair() -> (ParamStore, ParamStore) {
        let mut rng = StdRng::seed_from_u64(7);
        let mut a = ParamStore::new();
        let _ = Linear::new(&mut a, "fc", 3, 2, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(99);
        let mut b = ParamStore::new();
        let _ = Linear::new(&mut b, "fc", 3, 2, &mut rng2);
        (a, b)
    }

    #[test]
    fn roundtrip_restores_exact_values() {
        let (a, mut b) = store_pair();
        let mut buf = Vec::new();
        save_params(&mut buf, &a).unwrap();
        load_params(buf.as_slice(), &mut b).unwrap();
        for ((_, _, va), (_, _, vb)) in a.iter().zip(b.iter()) {
            assert_eq!(va.as_slice(), vb.as_slice());
        }
    }

    #[test]
    fn layout_mismatch_is_detected() {
        let (a, _) = store_pair();
        let mut buf = Vec::new();
        save_params(&mut buf, &a).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut other = ParamStore::new();
        let _ = Linear::new(&mut other, "different", 3, 2, &mut rng);
        let err = load_params(buf.as_slice(), &mut other).unwrap_err();
        assert!(matches!(err, LoadParamsError::LayoutMismatch(_)), "{err}");
    }

    #[test]
    fn wrong_shape_is_detected() {
        let (a, _) = store_pair();
        let mut buf = Vec::new();
        save_params(&mut buf, &a).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut other = ParamStore::new();
        let _ = Linear::new(&mut other, "fc", 4, 2, &mut rng);
        assert!(matches!(
            load_params(buf.as_slice(), &mut other).unwrap_err(),
            LoadParamsError::LayoutMismatch(_)
        ));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let (_, mut b) = store_pair();
        assert!(matches!(
            load_params(&b"XXXX...."[..], &mut b).unwrap_err(),
            LoadParamsError::BadMagic
        ));
    }
}
