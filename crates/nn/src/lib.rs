//! Neural-network building blocks for the Voyager prefetcher reproduction.
//!
//! Built on [`voyager_tensor`]'s tape autograd, this crate provides what
//! the paper's model (Fig. 2) needs and nothing more:
//!
//! * [`ParamStore`] / [`Session`] — named parameter tensors plus the glue
//!   that binds them onto a fresh [`Tape`](voyager_tensor::Tape) each
//!   training step and routes gradients back (including sparse gradients
//!   for embedding gathers).
//! * [`Adam`] — the paper's optimizer (Table 1), with gradient clipping
//!   and learning-rate decay.
//! * Layers: [`Linear`], [`Embedding`], [`LstmCell`], and
//!   [`ExpertAttention`] — the page-aware offset embedding mechanism of
//!   Section 4.2.2 — all applied through the uniform [`Layer`] contract
//!   (`layer.forward(sess, store, input)`).
//! * [`compress`] — magnitude pruning and 8-bit quantization used in
//!   Section 5.4 to shrink Voyager 110–200× below Delta-LSTM.
//! * [`HierarchicalSoftmax`] — the Section 5.5 future-work output head
//!   (`O(sqrt(V))` classes evaluated per step instead of `O(V)`).
//! * [`serialize`] — parameter checkpointing for the Section 5.5
//!   profile-then-deploy workflow.
//! * [`soft`] — soft-label (top-k token/probability) extraction from
//!   the output heads, the teacher side of table distillation.
//!
//! # Example: one gradient step on a tiny regression
//!
//! ```
//! use voyager_nn::{Adam, Layer, Linear, ParamStore, Session};
//! use voyager_tensor::Tensor2;
//! use voyager_tensor::rng::{StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let mut store = ParamStore::new();
//! let layer = Linear::new(&mut store, "fc", 2, 1, &mut rng);
//! let mut adam = Adam::new(0.05);
//!
//! let x = Tensor2::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
//! let target = Tensor2::from_rows(&[&[1.0], &[-1.0]]);
//! let mut last = f32::INFINITY;
//! for _ in 0..50 {
//!     let mut sess = Session::new();
//!     let xv = sess.tape.leaf(x.clone(), false);
//!     let y = layer.forward(&mut sess, &store, xv);
//!     let t = sess.tape.leaf(target.clone(), false);
//!     let diff = sess.tape.sub(y, t);
//!     let sq = sess.tape.mul(diff, diff);
//!     let loss = sess.tape.mean_all(sq);
//!     last = sess.tape.value(loss).get(0, 0);
//!     sess.step(loss, &mut store, &mut adam);
//! }
//! assert!(last < 1e-2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compress;
pub mod qinfer;
pub mod serialize;
pub mod soft;

mod grads;
mod hier_softmax;
mod layer;
mod layers;
mod optim;
mod params;

pub use voyager_tensor::rng;

pub use grads::{GradEntry, GradSet};
pub use hier_softmax::{HierarchicalSoftmax, PAD_MASK};
pub use layer::Layer;
pub use layers::{Embedding, ExpertAttention, Linear, LstmCell, LstmState};
pub use optim::{Adam, AdamState};
pub use params::{ParamId, ParamStore, Session};
pub use qinfer::{QuantizedHierHead, QuantizedLinear, QuantizedLstm, QuantizedMatmul};
pub use soft::{SoftLabelExtractor, SoftLabels};
