//! The [`Layer`] contract: one calling convention for every layer.

use crate::{ParamStore, Session};

/// Uniform forward-pass contract for the layers in this crate.
///
/// Every layer applies as `layer.forward(sess, store, input)`, in that
/// argument order, regardless of what the input is — a single
/// activation [`Var`](voyager_tensor::Var), a batch of embedding ids,
/// or a `(input, state)` pair for recurrent cells. The contract a
/// `forward` implementation must uphold:
///
/// * **Record, don't mutate** — it records the layer's computation as
///   nodes on `sess.tape` and returns handles to them. It never
///   modifies `store`; parameter updates happen later through
///   [`Session::step`](crate::Session::step).
/// * **Parameters via the session** — parameter tensors are bound onto
///   the tape with [`Session::param`](crate::Session::param) /
///   [`Session::gather`](crate::Session::gather) so their gradients
///   flow back to `store` by [`ParamId`](crate::ParamId).
/// * **Pure and deterministic** — the recorded values depend only on
///   the input handles and the current parameter values; calling
///   `forward` twice on identical sessions records identical nodes.
///
/// Layers whose application yields more than one interesting value
/// (e.g. [`ExpertAttention`](crate::ExpertAttention)'s attention
/// weights) expose additional inherent methods that follow the same
/// `(sess, store, input)` order.
///
/// # Example
///
/// ```
/// use voyager_nn::{Layer, Linear, ParamStore, Session};
/// use voyager_tensor::rng::{SeedableRng, StdRng};
/// use voyager_tensor::Tensor2;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut store = ParamStore::new();
/// let fc = Linear::new(&mut store, "fc", 3, 2, &mut rng);
/// let mut sess = Session::new();
/// let x = sess.tape.leaf(Tensor2::zeros(4, 3), false);
/// let y = fc.forward(&mut sess, &store, x);
/// assert_eq!(sess.tape.value(y).shape(), (4, 2));
/// ```
pub trait Layer<Input> {
    /// Value produced by one forward application.
    type Output;

    /// Records the layer's forward computation for `input` on
    /// `sess.tape`, reading parameters from `store`.
    fn forward(&self, sess: &mut Session, store: &ParamStore, input: Input) -> Self::Output;
}
