//! Materialized gradients, decoupled from the tape that produced them.
//!
//! [`Session::step`](crate::Session::step) couples backward pass and
//! optimizer application; data-parallel training needs them apart. A
//! worker runs [`Session::collect_grads`](crate::Session::collect_grads)
//! on its shard to obtain a [`GradSet`], the aggregator reduces the
//! shards with [`GradSet::merge_scaled`] in a fixed order, and a single
//! optimizer applies the result with
//! [`Adam::apply_grad_set`](crate::Adam::apply_grad_set). Because every
//! shard runs the same model code, all shards produce structurally
//! identical sets (same parameter ids in the same order), which is what
//! makes the entry-wise merge below valid.

use voyager_tensor::Tensor2;

use crate::ParamId;

/// Gradient of one parameter tensor.
#[derive(Debug, Clone)]
pub enum GradEntry {
    /// Gradient for the full parameter tensor.
    Dense(Tensor2),
    /// Row gradients for an embedding table gathered via
    /// [`Session::gather`](crate::Session::gather): `grad.row(i)` is the
    /// gradient of table row `rows[i]`. Duplicate rows are legal and are
    /// coalesced at application time.
    Sparse {
        /// Touched table rows, in gather order.
        rows: Vec<usize>,
        /// One gradient row per entry of `rows`.
        grad: Tensor2,
    },
}

/// The gradients of one backward pass (or a weighted reduction of
/// several), keyed by parameter id in binding order.
#[derive(Debug, Clone, Default)]
pub struct GradSet {
    entries: Vec<(ParamId, GradEntry)>,
}

impl GradSet {
    /// Creates an empty set (the identity of [`GradSet::merge_scaled`]).
    pub fn new() -> Self {
        GradSet::default()
    }

    pub(crate) fn from_entries(entries: Vec<(ParamId, GradEntry)>) -> Self {
        GradSet { entries }
    }

    /// Number of parameter gradients in the set.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the set holds no gradients.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(id, gradient)` pairs in binding order.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &GradEntry)> {
        self.entries.iter().map(|(id, e)| (*id, e))
    }

    /// Accumulates `other * weight` into `self`.
    ///
    /// Merging into an empty set clones `other` (scaled); otherwise the
    /// two sets must be structurally identical — same parameter ids in
    /// the same order, dense-vs-sparse agreeing per id — as is the case
    /// for shards produced by the same model code. Dense gradients are
    /// added; sparse gradients are concatenated (coalescing happens when
    /// the optimizer applies them).
    ///
    /// With shard weights `len(shard) / len(batch)` this reproduces the
    /// gradient of the mean-reduced loss over the whole batch, and
    /// reducing shards in a fixed order makes the result independent of
    /// how shards were assigned to workers.
    ///
    /// # Panics
    ///
    /// Panics if both sets are non-empty and structurally different.
    pub fn merge_scaled(&mut self, other: &GradSet, weight: f32) {
        if self.entries.is_empty() {
            self.entries = other
                .entries
                .iter()
                .map(|(id, e)| (*id, scale_entry(e, weight)))
                .collect();
            return;
        }
        assert_eq!(
            self.entries.len(),
            other.entries.len(),
            "cannot merge structurally different GradSets"
        );
        for ((id_a, a), (id_b, b)) in self.entries.iter_mut().zip(&other.entries) {
            assert_eq!(id_a, id_b, "GradSet parameter order differs");
            match (a, b) {
                (GradEntry::Dense(da), GradEntry::Dense(db)) => da.add_scaled(db, weight),
                (
                    GradEntry::Sparse { rows: ra, grad: ga },
                    GradEntry::Sparse { rows: rb, grad: gb },
                ) => {
                    ra.extend_from_slice(rb);
                    let cols = ga.cols();
                    assert_eq!(cols, gb.cols(), "sparse gradient widths differ");
                    let mut data = ga.as_slice().to_vec();
                    data.extend(gb.as_slice().iter().map(|&g| g * weight));
                    *ga = Tensor2::from_vec(ra.len(), cols, data);
                }
                (a, b) => {
                    // Only reachable on a dense/sparse kind mismatch;
                    // abort through the same assert machinery as the
                    // sibling structural invariants above.
                    let kind = |e: &GradEntry| match e {
                        GradEntry::Dense(_) => "dense",
                        GradEntry::Sparse { .. } => "sparse",
                    };
                    assert_eq!(
                        kind(a),
                        kind(b),
                        "GradSet entry kind differs for parameter {id_a:?}"
                    );
                }
            }
        }
    }

    /// Collapses duplicate rows in every sparse entry, accumulating in
    /// first-occurrence order (the same order the optimizer's own
    /// coalescing uses, so per-row sums are bitwise unchanged).
    ///
    /// A merged gradient repeats each gathered row once per shard and
    /// once per in-shard occurrence; every replica applying it would
    /// redo the same duplicate bookkeeping. Coalescing once at the
    /// aggregator does that work a single time before broadcast.
    pub fn coalesce_sparse(&mut self) {
        for (_, entry) in &mut self.entries {
            let GradEntry::Sparse { rows, grad } = entry else {
                continue;
            };
            let cols = grad.cols();
            let mut slot_of = std::collections::HashMap::with_capacity(rows.len());
            let mut out_rows: Vec<usize> = Vec::new();
            let mut data: Vec<f32> = Vec::new();
            for (i, &r) in rows.iter().enumerate() {
                let slot = *slot_of.entry(r).or_insert_with(|| {
                    out_rows.push(r);
                    data.extend(std::iter::repeat_n(0.0, cols));
                    out_rows.len() - 1
                });
                for (acc, &g) in data[slot * cols..(slot + 1) * cols]
                    .iter_mut()
                    .zip(grad.row(i))
                {
                    *acc += g;
                }
            }
            if out_rows.len() < rows.len() {
                *rows = out_rows;
                *grad = Tensor2::from_vec(rows.len(), cols, data);
            }
        }
    }

    /// Sum of squared gradient elements across all entries — the squared
    /// global norm used for clipping, matching what
    /// [`Session::step`](crate::Session::step) computes for a
    /// single-tape pass.
    pub fn sq_norm(&self) -> f32 {
        self.entries
            .iter()
            .map(|(_, e)| match e {
                GradEntry::Dense(g) => g.sq_norm(),
                GradEntry::Sparse { grad, .. } => grad.sq_norm(),
            })
            .sum()
    }
}

fn scale_entry(e: &GradEntry, weight: f32) -> GradEntry {
    match e {
        GradEntry::Dense(g) => GradEntry::Dense(g.map(|x| x * weight)),
        GradEntry::Sparse { rows, grad } => GradEntry::Sparse {
            rows: rows.clone(),
            grad: grad.map(|x| x * weight),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Adam, ParamStore, Session};

    #[test]
    fn collect_then_apply_matches_step() {
        // Identical models + data: sess.step() and
        // collect_grads()/apply_grad_set() must produce the same values.
        let build = || {
            let mut store = ParamStore::new();
            let w = store.register("w", Tensor2::from_rows(&[&[1.0, -2.0]]));
            let e = store.register("e", Tensor2::from_rows(&[&[0.5], &[1.5]]));
            (store, w, e)
        };
        let (mut s1, w1, e1) = build();
        let (mut s2, w2, e2) = build();
        let mut a1 = Adam::new(0.05);
        let mut a2 = Adam::new(0.05);
        for _ in 0..5 {
            let run = |store: &ParamStore, w: ParamId, e: ParamId, sess: &mut Session| {
                let wv = sess.param(store, w);
                let ev = sess.gather(store, e, &[1, 0, 1]);
                let sum_w = sess.tape.sum_all(wv);
                let sum_e = sess.tape.sum_all(ev);
                let loss = sess.tape.add(sum_w, sum_e);
                let sq = sess.tape.mul(loss, loss);
                sess.tape.sum_all(sq)
            };
            let mut sess1 = Session::new();
            let loss1 = run(&s1, w1, e1, &mut sess1);
            sess1.step(loss1, &mut s1, &mut a1);

            let mut sess2 = Session::new();
            let loss2 = run(&s2, w2, e2, &mut sess2);
            let grads = sess2.collect_grads(loss2);
            a2.apply_grad_set(&mut s2, &grads);
        }
        for ((_, _, va), (_, _, vb)) in s1.iter().zip(s2.iter()) {
            assert_eq!(va.as_slice(), vb.as_slice());
        }
        assert_eq!(a1.steps(), a2.steps());
    }

    #[test]
    fn merge_scaled_weights_dense_and_concats_sparse() {
        let mut a = GradSet::from_entries(vec![
            (ParamId(0), GradEntry::Dense(Tensor2::from_rows(&[&[2.0]]))),
            (
                ParamId(1),
                GradEntry::Sparse {
                    rows: vec![3],
                    grad: Tensor2::from_rows(&[&[4.0]]),
                },
            ),
        ]);
        let b = GradSet::from_entries(vec![
            (ParamId(0), GradEntry::Dense(Tensor2::from_rows(&[&[10.0]]))),
            (
                ParamId(1),
                GradEntry::Sparse {
                    rows: vec![7],
                    grad: Tensor2::from_rows(&[&[8.0]]),
                },
            ),
        ]);
        let mut total = GradSet::new();
        total.merge_scaled(&a, 0.5);
        total.merge_scaled(&b, 0.25);
        a.merge_scaled(&b, 1.0);
        let entries: Vec<_> = total.iter().collect();
        match &entries[0].1 {
            GradEntry::Dense(g) => assert_eq!(g.as_slice(), &[2.0 * 0.5 + 10.0 * 0.25]),
            _ => panic!("expected dense"),
        }
        match &entries[1].1 {
            GradEntry::Sparse { rows, grad } => {
                assert_eq!(rows, &[3, 7]);
                assert_eq!(grad.as_slice(), &[4.0 * 0.5, 8.0 * 0.25]);
            }
            _ => panic!("expected sparse"),
        }
        assert!((total.sq_norm() - (3.5f32 * 3.5 + 4.0 + 4.0)).abs() < 1e-6);
    }

    #[test]
    fn coalesce_sums_duplicate_rows_in_occurrence_order() {
        let mut set = GradSet::from_entries(vec![
            (ParamId(0), GradEntry::Dense(Tensor2::from_rows(&[&[1.0]]))),
            (
                ParamId(1),
                GradEntry::Sparse {
                    rows: vec![3, 7, 3, 7, 3],
                    grad: Tensor2::from_rows(&[
                        &[1.0, 10.0],
                        &[2.0, 20.0],
                        &[4.0, 40.0],
                        &[8.0, 80.0],
                        &[16.0, 160.0],
                    ]),
                },
            ),
        ]);
        set.coalesce_sparse();
        let entries: Vec<_> = set.iter().collect();
        match &entries[1].1 {
            GradEntry::Sparse { rows, grad } => {
                assert_eq!(rows, &[3, 7]);
                assert_eq!(grad.as_slice(), &[21.0, 210.0, 10.0, 100.0]);
            }
            _ => panic!("expected sparse"),
        }
        match &entries[0].1 {
            GradEntry::Dense(g) => assert_eq!(g.as_slice(), &[1.0]),
            _ => panic!("expected dense"),
        }
    }

    #[test]
    #[should_panic(expected = "structurally different")]
    fn merging_mismatched_sets_panics() {
        let mut a =
            GradSet::from_entries(vec![(ParamId(0), GradEntry::Dense(Tensor2::scalar(1.0)))]);
        let b = GradSet::from_entries(vec![
            (ParamId(0), GradEntry::Dense(Tensor2::scalar(1.0))),
            (ParamId(1), GradEntry::Dense(Tensor2::scalar(1.0))),
        ]);
        a.merge_scaled(&b, 1.0);
    }
}
