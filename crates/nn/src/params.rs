//! Parameter storage and the per-step training session.

use voyager_tensor::{Tape, Tensor2, Var};

use crate::grads::{GradEntry, GradSet};
use crate::Adam;

/// Identifier of a parameter tensor inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ParamId(pub(crate) usize);

/// Named collection of trainable parameter tensors.
///
/// Layers register their weights here at construction time and refer to
/// them by [`ParamId`]. The store outlives the per-step [`Session`] /
/// [`Tape`](voyager_tensor::Tape) objects.
#[derive(Debug, Default)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<Tensor2>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ParamStore::default()
    }

    /// Registers a parameter tensor and returns its id.
    pub fn register(&mut self, name: impl Into<String>, value: Tensor2) -> ParamId {
        self.names.push(name.into());
        self.values.push(value);
        ParamId(self.values.len() - 1)
    }

    /// Number of registered parameter tensors.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Borrows the current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor2 {
        &self.values[id.0]
    }

    /// Mutably borrows the current value of a parameter.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor2 {
        &mut self.values[id.0]
    }

    /// Returns the registered name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Iterates over `(id, name, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Tensor2)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (ParamId(i), self.names[i].as_str(), v))
    }

    /// Total number of scalar parameters across all tensors.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Tensor2::len).sum()
    }

    /// Clones every parameter value, in registration order. Together
    /// with [`ParamStore::import_values`] this synchronizes model
    /// replicas built by the same constructor (data-parallel training
    /// keeps worker replicas equal to the master this way).
    pub fn export_values(&self) -> Vec<Tensor2> {
        self.values.clone()
    }

    /// Overwrites every parameter with `values` (in registration order),
    /// as exported by [`ParamStore::export_values`] from a store with
    /// identical layout.
    ///
    /// # Panics
    ///
    /// Panics on count or shape mismatch.
    pub fn import_values(&mut self, values: &[Tensor2]) {
        assert_eq!(
            values.len(),
            self.values.len(),
            "store has {} tensors, import has {}",
            self.values.len(),
            values.len()
        );
        for (i, (dst, src)) in self.values.iter_mut().zip(values).enumerate() {
            assert_eq!(
                dst.shape(),
                src.shape(),
                "tensor {:?} shape mismatch",
                self.names[i]
            );
            *dst = src.clone();
        }
    }
}

/// One forward/backward pass: a fresh tape plus the bookkeeping needed to
/// route tape gradients back to [`ParamStore`] parameters.
///
/// Dense parameters enter the tape through [`Session::param`]; embedding
/// rows enter through [`Session::gather`], which keeps the (potentially
/// huge) table off the tape and produces *sparse* row gradients, exactly
/// like a lazy embedding update in a deep-learning framework.
#[derive(Debug, Default)]
pub struct Session {
    /// The underlying autograd tape. Exposed so model code can record
    /// arbitrary ops between layer calls.
    pub tape: Tape,
    dense: Vec<(ParamId, Var)>,
    sparse: Vec<(ParamId, Vec<usize>, Var)>,
}

impl Session {
    /// Creates an empty session.
    pub fn new() -> Self {
        Session::default()
    }

    /// Binds the full value of parameter `id` onto the tape as a
    /// differentiable leaf and returns its [`Var`].
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        let var = self.tape.leaf(store.value(id).clone(), true);
        self.dense.push((id, var));
        var
    }

    /// Gathers `rows` of the embedding table `id` into a
    /// `[rows.len(), dim]` differentiable leaf.
    ///
    /// The backward pass scatter-adds the leaf's gradient back into only
    /// the touched rows.
    ///
    /// # Panics
    ///
    /// Panics if any row index is out of bounds.
    pub fn gather(&mut self, store: &ParamStore, id: ParamId, rows: &[usize]) -> Var {
        let table = store.value(id);
        let dim = table.cols();
        let mut out = Tensor2::zeros(rows.len(), dim);
        for (i, &r) in rows.iter().enumerate() {
            assert!(
                r < table.rows(),
                "embedding row {r} out of {}",
                table.rows()
            );
            out.row_mut(i).copy_from_slice(table.row(r));
        }
        let var = self.tape.leaf(out, true);
        self.sparse.push((id, rows.to_vec(), var));
        var
    }

    /// Runs backward from `loss` and applies one optimizer step to every
    /// parameter bound in this session. Consumes nothing; the session can
    /// be dropped afterwards.
    pub fn step(&mut self, loss: Var, store: &mut ParamStore, adam: &mut Adam) {
        self.tape.backward(loss);
        adam.begin_step();
        let clip = adam.clip_scale(self.global_grad_sq_norm());
        for (id, var) in std::mem::take(&mut self.dense) {
            if let Some(grad) = self.tape.grad(var) {
                adam.apply_dense(store, id, grad, clip);
            }
        }
        for (id, rows, var) in std::mem::take(&mut self.sparse) {
            if let Some(grad) = self.tape.grad(var) {
                adam.apply_sparse(store, id, &rows, grad, clip);
            }
        }
    }

    /// Runs backward from `loss` and returns the materialized gradients
    /// of every parameter bound in this session *without* touching the
    /// store — the decomposed half of [`Session::step`] that
    /// data-parallel workers use. Reduce shards with
    /// [`GradSet::merge_scaled`] and apply with
    /// [`Adam::apply_grad_set`].
    pub fn collect_grads(&mut self, loss: Var) -> GradSet {
        self.tape.backward(loss);
        let mut entries = Vec::new();
        for (id, var) in std::mem::take(&mut self.dense) {
            if let Some(grad) = self.tape.grad(var) {
                entries.push((id, GradEntry::Dense(grad.clone())));
            }
        }
        for (id, rows, var) in std::mem::take(&mut self.sparse) {
            if let Some(grad) = self.tape.grad(var) {
                entries.push((
                    id,
                    GradEntry::Sparse {
                        rows,
                        grad: grad.clone(),
                    },
                ));
            }
        }
        GradSet::from_entries(entries)
    }

    fn global_grad_sq_norm(&self) -> f32 {
        let mut total = 0.0;
        for (_, var) in &self.dense {
            if let Some(g) = self.tape.grad(*var) {
                total += g.sq_norm();
            }
        }
        for (_, _, var) in &self.sparse {
            if let Some(g) = self.tape.grad(*var) {
                total += g.sq_norm();
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor2::scalar(2.0));
        assert_eq!(store.name(id), "w");
        assert_eq!(store.value(id).get(0, 0), 2.0);
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
        assert_eq!(store.num_scalars(), 1);
    }

    #[test]
    fn gather_copies_requested_rows() {
        let mut store = ParamStore::new();
        let table = Tensor2::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let id = store.register("emb", table);
        let mut sess = Session::new();
        let v = sess.gather(&store, id, &[2, 0, 2]);
        assert_eq!(
            sess.tape.value(v).as_slice(),
            &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]
        );
    }

    #[test]
    fn sparse_step_only_touches_gathered_rows() {
        let mut store = ParamStore::new();
        let id = store.register("emb", Tensor2::zeros(3, 2));
        let mut adam = Adam::new(0.1);
        let mut sess = Session::new();
        let v = sess.gather(&store, id, &[1]);
        let s = sess.tape.sum_all(v);
        // Maximize sum -> gradient is +1 on row 1; Adam moves it by -lr.
        sess.step(s, &mut store, &mut adam);
        let t = store.value(id);
        assert_eq!(t.row(0), &[0.0, 0.0]);
        assert_eq!(t.row(2), &[0.0, 0.0]);
        assert!(t.get(1, 0) < 0.0 && t.get(1, 1) < 0.0);
    }

    #[test]
    fn duplicate_gather_rows_accumulate() {
        let mut store = ParamStore::new();
        let id = store.register("emb", Tensor2::zeros(2, 1));
        let mut adam = Adam::new(0.1);
        let mut sess = Session::new();
        let v = sess.gather(&store, id, &[0, 0]);
        let s = sess.tape.sum_all(v);
        sess.step(s, &mut store, &mut adam);
        // Row 0 was gathered twice so its gradient is 2.0; Adam still
        // moves it in the negative direction.
        assert!(store.value(id).get(0, 0) < 0.0);
        assert_eq!(store.value(id).get(1, 0), 0.0);
    }

    #[test]
    fn iter_exposes_all_params() {
        let mut store = ParamStore::new();
        store.register("a", Tensor2::zeros(1, 2));
        store.register("b", Tensor2::zeros(2, 2));
        let names: Vec<&str> = store.iter().map(|(_, n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(store.num_scalars(), 6);
    }
}
