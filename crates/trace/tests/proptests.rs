//! Property-based tests of trace-level invariants: labeling schemes,
//! the hierarchical vocabulary, statistics, serialization and SimPoint
//! sampling.

use proptest::prelude::*;

use voyager_trace::labels::{basic_block_of, compute_labels};
use voyager_trace::serialize::{read_trace, write_trace};
use voyager_trace::simpoint::{sample_trace, simpoints};
use voyager_trace::stats::TraceStats;
use voyager_trace::vocab::{PageToken, VocabConfig, Vocabulary};
use voyager_trace::{MemoryAccess, Trace, OFFSETS_PER_PAGE};

fn arb_trace(max_len: usize) -> impl Strategy<Value = Trace> {
    prop::collection::vec((0u64..32, 0u64..10_000), 2..max_len).prop_map(|entries| {
        entries
            .into_iter()
            .map(|(pc, line)| MemoryAccess::new(0x40_0000 + pc * 8, line * 64))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn labels_always_point_forward(trace in arb_trace(120)) {
        let labels = compute_labels(&trace);
        for (i, l) in labels.iter().enumerate() {
            for j in l.candidates() {
                prop_assert!(j as usize > i, "label {j} not after {i}");
                prop_assert!((j as usize) < trace.len());
            }
        }
    }

    #[test]
    fn pc_label_matches_pc_and_bb_label_matches_block(trace in arb_trace(120)) {
        let labels = compute_labels(&trace);
        for (i, l) in labels.iter().enumerate() {
            if let Some(j) = l.pc {
                prop_assert_eq!(trace[j as usize].pc, trace[i].pc);
            }
            if let Some(j) = l.basic_block {
                prop_assert_eq!(
                    basic_block_of(trace[j as usize].pc),
                    basic_block_of(trace[i].pc)
                );
            }
        }
    }

    #[test]
    fn global_label_is_dense(trace in arb_trace(80)) {
        let labels = compute_labels(&trace);
        for (i, l) in labels.iter().enumerate() {
            if i + 1 < trace.len() {
                prop_assert_eq!(l.global, Some(i as u32 + 1));
            } else {
                prop_assert_eq!(l.global, None);
            }
        }
    }

    #[test]
    fn tokenization_is_total_and_offsets_bounded(trace in arb_trace(150)) {
        let vocab = Vocabulary::build(&trace, &VocabConfig::default());
        let tokens = vocab.tokenize(&trace);
        prop_assert_eq!(tokens.len(), trace.len());
        for t in &tokens {
            prop_assert!((t.offset as usize) < OFFSETS_PER_PAGE);
            prop_assert!((t.page as usize) < vocab.page_vocab_len());
            prop_assert!((t.pc as usize) < vocab.pc_vocab_len());
        }
    }

    #[test]
    fn page_tokens_resolve_back_to_their_line(trace in arb_trace(150)) {
        // For any access tokenized as a concrete page, resolving the
        // (page, offset) pair from any position reconstructs its line.
        let vocab = Vocabulary::build(&trace, &VocabConfig::default());
        let tokens = vocab.tokenize(&trace);
        for (i, t) in tokens.iter().enumerate() {
            if matches!(vocab.page_token(t.page), PageToken::Page(_)) {
                let line = vocab
                    .resolve_prediction(&trace[0], t.page, t.offset)
                    .expect("page tokens always resolve");
                prop_assert_eq!(line, trace[i].line());
            }
        }
    }

    #[test]
    fn delta_tokens_resolve_relative_to_previous_access(trace in arb_trace(150)) {
        let vocab = Vocabulary::build(&trace, &VocabConfig::default());
        let tokens = vocab.tokenize(&trace);
        for i in 1..trace.len() {
            if matches!(vocab.page_token(tokens[i].page), PageToken::Delta(_)) {
                let line = vocab.resolve_prediction(&trace[i - 1], tokens[i].page, tokens[i].offset);
                prop_assert_eq!(line, Some(trace[i].line()), "delta token must reconstruct");
            }
        }
    }

    #[test]
    fn stats_are_bounded_by_trace_length(trace in arb_trace(200)) {
        let s = TraceStats::of(&trace);
        prop_assert!(s.unique_pcs <= trace.len());
        prop_assert!(s.unique_pages <= s.unique_addresses);
        prop_assert!(s.unique_addresses <= trace.len());
        prop_assert_eq!(s.accesses, trace.len());
    }

    #[test]
    fn serialization_roundtrips(trace in arb_trace(200)) {
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let restored = read_trace(buf.as_slice()).unwrap();
        prop_assert_eq!(restored, trace);
    }

    #[test]
    fn simpoint_weights_form_a_distribution(trace in arb_trace(300), k in 1usize..5) {
        let points = simpoints(&trace, 32, k);
        prop_assert!(!points.is_empty());
        prop_assert!(points.len() <= k);
        let total: f64 = points.iter().map(|p| p.weight).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for p in &points {
            prop_assert!(p.start + p.len <= trace.len());
        }
        let sampled = sample_trace(&trace, &points);
        prop_assert!(sampled.len() <= trace.len());
    }
}
