//! Randomized tests of trace-level invariants: labeling schemes, the
//! hierarchical vocabulary, statistics, serialization and SimPoint
//! sampling.
//!
//! Formerly a `proptest` suite; ported to seeded loops over the
//! workspace PRNG so the test suite builds with no external
//! dependencies (offline-build policy).

use voyager_trace::labels::{basic_block_of, compute_labels};
use voyager_trace::rng::{Rng, SeedableRng, StdRng};
use voyager_trace::serialize::{read_trace, write_trace};
use voyager_trace::simpoint::{sample_trace, simpoints};
use voyager_trace::stats::TraceStats;
use voyager_trace::vocab::{PageToken, VocabConfig, Vocabulary};
use voyager_trace::{MemoryAccess, Trace, OFFSETS_PER_PAGE};

const CASES: usize = 48;

fn rand_trace(max_len: usize, rng: &mut StdRng) -> Trace {
    let len = rng.gen_range(2..max_len);
    (0..len)
        .map(|_| {
            let pc = rng.gen_range(0u64..32);
            let line = rng.gen_range(0u64..10_000);
            MemoryAccess::new(0x40_0000 + pc * 8, line * 64)
        })
        .collect()
}

#[test]
fn labels_always_point_forward() {
    let mut rng = StdRng::seed_from_u64(0xB001);
    for _ in 0..CASES {
        let trace = rand_trace(120, &mut rng);
        let labels = compute_labels(&trace);
        for (i, l) in labels.iter().enumerate() {
            for j in l.candidates() {
                assert!(j as usize > i, "label {j} not after {i}");
                assert!((j as usize) < trace.len());
            }
        }
    }
}

#[test]
fn pc_label_matches_pc_and_bb_label_matches_block() {
    let mut rng = StdRng::seed_from_u64(0xB002);
    for _ in 0..CASES {
        let trace = rand_trace(120, &mut rng);
        let labels = compute_labels(&trace);
        for (i, l) in labels.iter().enumerate() {
            if let Some(j) = l.pc {
                assert_eq!(trace[j as usize].pc, trace[i].pc);
            }
            if let Some(j) = l.basic_block {
                assert_eq!(
                    basic_block_of(trace[j as usize].pc),
                    basic_block_of(trace[i].pc)
                );
            }
        }
    }
}

#[test]
fn global_label_is_dense() {
    let mut rng = StdRng::seed_from_u64(0xB003);
    for _ in 0..CASES {
        let trace = rand_trace(80, &mut rng);
        let labels = compute_labels(&trace);
        for (i, l) in labels.iter().enumerate() {
            if i + 1 < trace.len() {
                assert_eq!(l.global, Some(i as u32 + 1));
            } else {
                assert_eq!(l.global, None);
            }
        }
    }
}

#[test]
fn tokenization_is_total_and_offsets_bounded() {
    let mut rng = StdRng::seed_from_u64(0xB004);
    for _ in 0..CASES {
        let trace = rand_trace(150, &mut rng);
        let vocab = Vocabulary::build(&trace, &VocabConfig::default());
        let tokens = vocab.tokenize(&trace);
        assert_eq!(tokens.len(), trace.len());
        for t in &tokens {
            assert!((t.offset as usize) < OFFSETS_PER_PAGE);
            assert!((t.page as usize) < vocab.page_vocab_len());
            assert!((t.pc as usize) < vocab.pc_vocab_len());
        }
    }
}

#[test]
fn page_tokens_resolve_back_to_their_line() {
    // For any access tokenized as a concrete page, resolving the
    // (page, offset) pair from any position reconstructs its line.
    let mut rng = StdRng::seed_from_u64(0xB005);
    for _ in 0..CASES {
        let trace = rand_trace(150, &mut rng);
        let vocab = Vocabulary::build(&trace, &VocabConfig::default());
        let tokens = vocab.tokenize(&trace);
        for (i, t) in tokens.iter().enumerate() {
            if matches!(vocab.page_token(t.page), PageToken::Page(_)) {
                let line = vocab
                    .resolve_prediction(&trace[0], t.page, t.offset)
                    .expect("page tokens always resolve");
                assert_eq!(line, trace[i].line());
            }
        }
    }
}

#[test]
fn delta_tokens_resolve_relative_to_previous_access() {
    let mut rng = StdRng::seed_from_u64(0xB006);
    for _ in 0..CASES {
        let trace = rand_trace(150, &mut rng);
        let vocab = Vocabulary::build(&trace, &VocabConfig::default());
        let tokens = vocab.tokenize(&trace);
        for i in 1..trace.len() {
            if matches!(vocab.page_token(tokens[i].page), PageToken::Delta(_)) {
                let line =
                    vocab.resolve_prediction(&trace[i - 1], tokens[i].page, tokens[i].offset);
                assert_eq!(line, Some(trace[i].line()), "delta token must reconstruct");
            }
        }
    }
}

#[test]
fn stats_are_bounded_by_trace_length() {
    let mut rng = StdRng::seed_from_u64(0xB007);
    for _ in 0..CASES {
        let trace = rand_trace(200, &mut rng);
        let s = TraceStats::of(&trace);
        assert!(s.unique_pcs <= trace.len());
        assert!(s.unique_pages <= s.unique_addresses);
        assert!(s.unique_addresses <= trace.len());
        assert_eq!(s.accesses, trace.len());
    }
}

#[test]
fn serialization_roundtrips() {
    let mut rng = StdRng::seed_from_u64(0xB008);
    for _ in 0..CASES {
        let trace = rand_trace(200, &mut rng);
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let restored = read_trace(buf.as_slice()).unwrap();
        assert_eq!(restored, trace);
    }
}

#[test]
fn simpoint_weights_form_a_distribution() {
    let mut rng = StdRng::seed_from_u64(0xB009);
    for _ in 0..CASES {
        let trace = rand_trace(300, &mut rng);
        let k = rng.gen_range(1usize..5);
        let points = simpoints(&trace, 32, k);
        assert!(!points.is_empty());
        assert!(points.len() <= k);
        let total: f64 = points.iter().map(|p| p.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for p in &points {
            assert!(p.start + p.len <= trace.len());
        }
        let sampled = sample_trace(&trace, &points);
        assert!(sampled.len() <= trace.len());
    }
}
