//! Binary trace serialization.
//!
//! A compact, versioned on-disk format so traces can be generated once
//! and replayed across experiments (or exchanged with other tools):
//!
//! ```text
//! magic  "VTRC"            4 bytes
//! version u32 LE           4 bytes
//! name length u32 LE, name bytes (UTF-8)
//! access count u64 LE
//! per access: pc u64 LE, addr u64 LE, bubble u8
//! ```

use std::io::{self, Read, Write};

use crate::{MemoryAccess, Trace};

const MAGIC: &[u8; 4] = b"VTRC";
const VERSION: u32 = 1;

/// Errors returned by [`read_trace`].
#[derive(Debug)]
pub enum ReadTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the `VTRC` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The name field is not valid UTF-8.
    BadName,
}

impl std::fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadTraceError::Io(e) => write!(f, "i/o error: {e}"),
            ReadTraceError::BadMagic => write!(f, "not a voyager trace (bad magic)"),
            ReadTraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            ReadTraceError::BadName => write!(f, "trace name is not valid utf-8"),
        }
    }
}

impl std::error::Error for ReadTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadTraceError {
    fn from(e: io::Error) -> Self {
        ReadTraceError::Io(e)
    }
}

/// Writes a trace in the binary format. A `&mut` reference may be
/// passed for `writer`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write>(mut writer: W, trace: &Trace) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    let name = trace.name().as_bytes();
    writer.write_all(&(name.len() as u32).to_le_bytes())?;
    writer.write_all(name)?;
    writer.write_all(&(trace.len() as u64).to_le_bytes())?;
    for a in trace {
        writer.write_all(&a.pc.to_le_bytes())?;
        writer.write_all(&a.addr.to_le_bytes())?;
        writer.write_all(&[a.bubble])?;
    }
    Ok(())
}

/// Reads a trace written by [`write_trace`]. A `&mut` reference may be
/// passed for `reader`.
///
/// # Errors
///
/// Returns [`ReadTraceError`] on malformed input or I/O failure.
pub fn read_trace<R: Read>(mut reader: R) -> Result<Trace, ReadTraceError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(ReadTraceError::BadMagic);
    }
    let version = read_u32(&mut reader)?;
    if version != VERSION {
        return Err(ReadTraceError::BadVersion(version));
    }
    let name_len = read_u32(&mut reader)? as usize;
    let mut name_bytes = vec![0u8; name_len];
    reader.read_exact(&mut name_bytes)?;
    let name = String::from_utf8(name_bytes).map_err(|_| ReadTraceError::BadName)?;
    let count = read_u64(&mut reader)? as usize;
    let mut trace = Trace::new(name);
    for _ in 0..count {
        let pc = read_u64(&mut reader)?;
        let addr = read_u64(&mut reader)?;
        let mut bubble = [0u8; 1];
        reader.read_exact(&mut bubble)?;
        trace.push(MemoryAccess {
            pc,
            addr,
            bubble: bubble[0],
        });
    }
    Ok(trace)
}

fn read_u32<R: Read>(reader: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    reader.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(reader: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    reader.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::from_accesses(
            "sample",
            vec![
                MemoryAccess {
                    pc: 0x400000,
                    addr: 0xdead_beef,
                    bubble: 3,
                },
                MemoryAccess {
                    pc: 0x400008,
                    addr: 0,
                    bubble: 0,
                },
                MemoryAccess {
                    pc: u64::MAX,
                    addr: u64::MAX,
                    bubble: 255,
                },
            ],
        )
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let trace = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let restored = read_trace(buf.as_slice()).unwrap();
        assert_eq!(restored, trace);
        assert_eq!(restored.name(), "sample");
    }

    #[test]
    fn empty_trace_roundtrips() {
        let trace = Trace::new("empty");
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        assert_eq!(read_trace(buf.as_slice()).unwrap(), trace);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_trace(&b"NOPE............"[..]).unwrap_err();
        assert!(matches!(err, ReadTraceError::BadMagic));
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample()).unwrap();
        buf[4] = 99; // corrupt version
        assert!(matches!(
            read_trace(buf.as_slice()).unwrap_err(),
            ReadTraceError::BadVersion(_)
        ));
    }

    #[test]
    fn truncated_stream_is_an_io_error() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample()).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(
            read_trace(buf.as_slice()).unwrap_err(),
            ReadTraceError::Io(_)
        ));
    }

    #[test]
    fn generated_trace_roundtrips() {
        let trace = crate::gen::Benchmark::Sphinx.generate(&crate::gen::GeneratorConfig::small());
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let restored = read_trace(buf.as_slice()).unwrap();
        assert_eq!(restored, trace);
    }
}
