//! The five labeling/localization schemes of Section 4.4.
//!
//! Data prefetching has no ground-truth label: after access `A`, *any*
//! future address is a candidate. The paper trains Voyager with a set of
//! candidate labels per access — the next access in the global stream,
//! the next by the same PC, the next by the current basic block, the
//! next within a spatial neighbourhood, and the most co-occurring
//! address in a small future window — and lets the model pick whichever
//! is most predictable.

use std::collections::BTreeMap;

use crate::Trace;

/// How far ahead the spatial scheme searches for a nearby address.
const SPATIAL_HORIZON: usize = 64;

/// Spatial neighbourhood in cache lines (the paper uses 256, following
/// the Best-Offset prefetcher's region size).
pub const SPATIAL_RANGE_LINES: u64 = 256;

/// Future window examined by the co-occurrence scheme (the paper uses
/// 10 accesses).
pub const CO_OCCURRENCE_WINDOW: usize = 10;

/// A labeling scheme assigning each access one future access as its
/// training label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LabelScheme {
    /// Next access in the global stream (STMS-style).
    Global,
    /// Next access by the same PC (ISB-style PC localization).
    Pc,
    /// Next access by any PC in the same basic block.
    BasicBlock,
    /// Next access within ±[`SPATIAL_RANGE_LINES`] cache lines.
    Spatial,
    /// Most frequent address in the next [`CO_OCCURRENCE_WINDOW`]
    /// accesses.
    CoOccurrence,
}

impl LabelScheme {
    /// All five schemes in the paper's order.
    pub fn all() -> [LabelScheme; 5] {
        [
            LabelScheme::Global,
            LabelScheme::Pc,
            LabelScheme::BasicBlock,
            LabelScheme::Spatial,
            LabelScheme::CoOccurrence,
        ]
    }

    /// Scheme name as used in Fig. 15.
    pub fn name(&self) -> &'static str {
        match self {
            LabelScheme::Global => "global",
            LabelScheme::Pc => "pc",
            LabelScheme::BasicBlock => "basic-block",
            LabelScheme::Spatial => "spatial",
            LabelScheme::CoOccurrence => "co-occurrence",
        }
    }
}

impl std::fmt::Display for LabelScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The candidate labels of one access: for each scheme, the index of the
/// future access chosen as that scheme's label (if any).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LabelSet {
    /// Next access in the global stream.
    pub global: Option<u32>,
    /// Next access by the same PC.
    pub pc: Option<u32>,
    /// Next access by the same basic block.
    pub basic_block: Option<u32>,
    /// Next spatially close access.
    pub spatial: Option<u32>,
    /// Most co-occurring future address.
    pub co_occurrence: Option<u32>,
}

impl LabelSet {
    /// Returns the label for a given scheme.
    pub fn get(&self, scheme: LabelScheme) -> Option<u32> {
        match scheme {
            LabelScheme::Global => self.global,
            LabelScheme::Pc => self.pc,
            LabelScheme::BasicBlock => self.basic_block,
            LabelScheme::Spatial => self.spatial,
            LabelScheme::CoOccurrence => self.co_occurrence,
        }
    }

    /// Iterates over the distinct trace indices across all schemes.
    pub fn candidates(&self) -> impl Iterator<Item = u32> {
        let mut v = [
            self.global,
            self.pc,
            self.basic_block,
            self.spatial,
            self.co_occurrence,
        ]
        .into_iter()
        .flatten()
        .collect::<Vec<_>>();
        v.sort_unstable();
        v.dedup();
        v.into_iter()
    }
}

/// Basic-block id of a PC. Generators lay load sites of one loop body
/// within a 64-byte code block, so the high PC bits identify the block —
/// the same granularity a real frontend would get from branch targets.
pub fn basic_block_of(pc: u64) -> u64 {
    pc >> 6
}

/// Computes the full [`LabelSet`] for every access of a trace.
///
/// Runs in `O(n * (SPATIAL_HORIZON + CO_OCCURRENCE_WINDOW))`.
///
/// # Example
///
/// ```
/// use voyager_trace::{MemoryAccess, Trace};
/// use voyager_trace::labels::compute_labels;
///
/// let trace = Trace::from_accesses(
///     "t",
///     vec![MemoryAccess::new(1, 0), MemoryAccess::new(2, 64), MemoryAccess::new(1, 128)],
/// );
/// let labels = compute_labels(&trace);
/// assert_eq!(labels[0].global, Some(1));
/// assert_eq!(labels[0].pc, Some(2)); // next access by PC 1
/// ```
pub fn compute_labels(trace: &Trace) -> Vec<LabelSet> {
    let n = trace.len();
    let mut labels = vec![LabelSet::default(); n];

    // Global: trivially the next access.
    for (i, l) in labels.iter_mut().enumerate().take(n.saturating_sub(1)) {
        l.global = Some(i as u32 + 1);
    }

    // PC and basic-block localization: reverse scan with "next index by
    // key" maps.
    let mut next_by_pc: BTreeMap<u64, u32> = BTreeMap::new();
    let mut next_by_bb: BTreeMap<u64, u32> = BTreeMap::new();
    for i in (0..n).rev() {
        let a = &trace[i];
        labels[i].pc = next_by_pc.get(&a.pc).copied();
        labels[i].basic_block = next_by_bb.get(&basic_block_of(a.pc)).copied();
        next_by_pc.insert(a.pc, i as u32);
        next_by_bb.insert(basic_block_of(a.pc), i as u32);
    }

    // Spatial: bounded forward scan. A recurrence of the *same* line is
    // excluded — prefetching the line that just arrived is useless.
    for i in 0..n {
        let line = trace[i].line();
        for j in i + 1..(i + 1 + SPATIAL_HORIZON).min(n) {
            let other = trace[j].line();
            if other != line && other.abs_diff(line) <= SPATIAL_RANGE_LINES {
                labels[i].spatial = Some(j as u32);
                break;
            }
        }
    }

    // Co-occurrence: most frequent line in the next 10 accesses (the
    // current line excluded, as above), label pointing at its first
    // occurrence.
    for i in 0..n {
        let end = (i + 1 + CO_OCCURRENCE_WINDOW).min(n);
        if i + 1 >= end {
            continue;
        }
        let mut counts: BTreeMap<u64, (u32, u32)> = BTreeMap::new(); // line -> (count, first idx)
        for j in i + 1..end {
            if trace[j].line() == trace[i].line() {
                continue;
            }
            let e = counts.entry(trace[j].line()).or_insert((0, j as u32));
            e.0 += 1;
        }
        labels[i].co_occurrence = counts
            .values()
            .max_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)))
            .map(|&(_, first)| first);
    }

    labels
}

/// Convenience: labels for a single scheme.
pub fn labels_for_scheme(trace: &Trace, scheme: LabelScheme) -> Vec<Option<u32>> {
    compute_labels(trace)
        .iter()
        .map(|l| l.get(scheme))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryAccess;

    fn t(entries: &[(u64, u64)]) -> Trace {
        Trace::from_accesses(
            "t",
            entries
                .iter()
                .map(|&(pc, addr)| MemoryAccess::new(pc, addr))
                .collect(),
        )
    }

    #[test]
    fn global_is_next_index() {
        let trace = t(&[(1, 0), (2, 64), (3, 128)]);
        let l = compute_labels(&trace);
        assert_eq!(l[0].global, Some(1));
        assert_eq!(l[1].global, Some(2));
        assert_eq!(l[2].global, None);
    }

    #[test]
    fn pc_localization_skips_other_pcs() {
        // PC 7 accesses at indices 0 and 3.
        let trace = t(&[(7, 0), (8, 64), (9, 128), (7, 192)]);
        let l = compute_labels(&trace);
        assert_eq!(l[0].pc, Some(3));
        assert_eq!(l[3].pc, None);
    }

    #[test]
    fn basic_block_groups_nearby_pcs() {
        // PCs 0x400000 and 0x400008 share a 64-byte block.
        let trace = t(&[(0x40_0000, 0), (0x40_1000, 64), (0x40_0008, 128)]);
        let l = compute_labels(&trace);
        assert_eq!(l[0].basic_block, Some(2));
        assert_eq!(l[0].pc, None);
    }

    #[test]
    fn spatial_finds_nearby_line_within_horizon() {
        // Access 0 at line 0; access 1 is 10_000 lines away; access 2 is
        // 100 lines away -> spatial label = 2.
        let trace = t(&[(1, 0), (2, 10_000 * 64), (3, 100 * 64)]);
        let l = compute_labels(&trace);
        assert_eq!(l[0].spatial, Some(2));
    }

    #[test]
    fn spatial_range_is_inclusive_256() {
        let trace = t(&[(1, 0), (2, 256 * 64), (3, 64)]);
        let l = compute_labels(&trace);
        assert_eq!(l[0].spatial, Some(1), "256 lines away is within range");
        let trace = t(&[(1, 0), (2, 257 * 64), (3, 64)]);
        let l = compute_labels(&trace);
        assert_eq!(l[0].spatial, Some(2), "257 lines away is out of range");
    }

    #[test]
    fn co_occurrence_picks_most_frequent_future_line() {
        // After index 0, line 5 appears three times, others once.
        let trace = t(&[
            (1, 0),
            (2, 5 * 64),
            (3, 9 * 64),
            (4, 5 * 64),
            (5, 7 * 64),
            (6, 5 * 64),
        ]);
        let l = compute_labels(&trace);
        assert_eq!(
            l[0].co_occurrence,
            Some(1),
            "first occurrence of the dominant line"
        );
    }

    #[test]
    fn candidates_deduplicate() {
        let trace = t(&[(1, 0), (1, 64)]);
        let l = compute_labels(&trace);
        // global, pc, bb, spatial, cooc all point at index 1.
        let c: Vec<u32> = l[0].candidates().collect();
        assert_eq!(c, vec![1]);
    }

    #[test]
    fn single_scheme_helper_matches_full_labels() {
        let trace = t(&[(1, 0), (2, 64), (1, 128)]);
        let full = compute_labels(&trace);
        let pc_only = labels_for_scheme(&trace, LabelScheme::Pc);
        for (a, b) in full.iter().zip(&pc_only) {
            assert_eq!(a.pc, *b);
        }
    }

    #[test]
    fn empty_trace_yields_no_labels() {
        assert!(compute_labels(&Trace::new("e")).is_empty());
    }
}
