//! SimPoint-style phase analysis (Hamerly et al., the methodology the
//! paper uses to pick representative 250M-instruction regions).
//!
//! A trace is split into fixed-length intervals, each summarised by its
//! *basic-block vector* (the distribution of accesses over basic
//! blocks). Intervals are clustered with k-means; the interval closest
//! to each centroid becomes a SimPoint, weighted by its cluster's share
//! of the trace. Replaying only the SimPoints approximates whole-trace
//! behaviour at a fraction of the cost.

use std::collections::BTreeMap;

use crate::labels::basic_block_of;
use crate::Trace;

/// A representative interval chosen by [`simpoints`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimPoint {
    /// First access index of the interval.
    pub start: usize,
    /// Interval length in accesses (the last interval may be shorter).
    pub len: usize,
    /// Fraction of all intervals represented by this SimPoint's
    /// cluster (weights sum to 1).
    pub weight: f64,
}

/// Computes up to `k` SimPoints over intervals of `interval_len`
/// accesses.
///
/// Deterministic: k-means uses farthest-point initialisation seeded by
/// the first interval.
///
/// # Panics
///
/// Panics if `interval_len == 0` or `k == 0`.
///
/// # Example
///
/// ```
/// use voyager_trace::gen::{Benchmark, GeneratorConfig};
/// use voyager_trace::simpoint::simpoints;
///
/// let trace = Benchmark::Mcf.generate(&GeneratorConfig::small());
/// let points = simpoints(&trace, 1_000, 3);
/// assert!(!points.is_empty() && points.len() <= 3);
/// let total: f64 = points.iter().map(|p| p.weight).sum();
/// assert!((total - 1.0).abs() < 1e-9);
/// ```
pub fn simpoints(trace: &Trace, interval_len: usize, k: usize) -> Vec<SimPoint> {
    assert!(interval_len > 0, "interval length must be positive");
    assert!(k > 0, "need at least one cluster");
    let vectors = basic_block_vectors(trace, interval_len);
    if vectors.is_empty() {
        return Vec::new();
    }
    let k = k.min(vectors.len());
    let assignment = kmeans(&vectors, k);
    // Representative = interval closest to its cluster centroid.
    let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &c) in assignment.iter().enumerate() {
        clusters[c].push(i);
    }
    let centroids = centroids_of(&vectors, &assignment, k);
    let n_intervals = vectors.len();
    let mut points = Vec::new();
    for (c, members) in clusters.iter().enumerate() {
        if members.is_empty() {
            continue;
        }
        let Some(&rep) = members.iter().min_by(|&&a, &&b| {
            distance(&vectors[a], &centroids[c]).total_cmp(&distance(&vectors[b], &centroids[c]))
        }) else {
            continue; // unreachable: empty clusters were skipped above
        };
        let start = rep * interval_len;
        let len = interval_len.min(trace.len() - start);
        points.push(SimPoint {
            start,
            len,
            weight: members.len() as f64 / n_intervals as f64,
        });
    }
    points.sort_by_key(|p| p.start);
    points
}

/// Builds a reduced trace containing only the SimPoint intervals, in
/// order — the input one would feed to a detailed simulator.
pub fn sample_trace(trace: &Trace, points: &[SimPoint]) -> Trace {
    let mut out = Trace::new(format!("{}-simpoints", trace.name()));
    for p in points {
        out.extend(trace.as_slice()[p.start..p.start + p.len].iter().copied());
    }
    out
}

// `BTreeMap` so float accumulation in `distance`/`centroids_of` visits
// keys in a fixed order: k-means results are bitwise-reproducible.
type Bbv = BTreeMap<u64, f64>;

fn basic_block_vectors(trace: &Trace, interval_len: usize) -> Vec<Bbv> {
    let mut vectors = Vec::new();
    for chunk in trace.as_slice().chunks(interval_len) {
        let mut v: Bbv = BTreeMap::new();
        for a in chunk {
            *v.entry(basic_block_of(a.pc)).or_default() += 1.0;
        }
        let norm = chunk.len() as f64;
        for val in v.values_mut() {
            *val /= norm;
        }
        vectors.push(v);
    }
    vectors
}

fn distance(a: &Bbv, b: &Bbv) -> f64 {
    let mut sum = 0.0;
    for (k, &va) in a {
        let vb = b.get(k).copied().unwrap_or(0.0);
        sum += (va - vb) * (va - vb);
    }
    for (k, &vb) in b {
        if !a.contains_key(k) {
            sum += vb * vb;
        }
    }
    sum
}

fn centroids_of(vectors: &[Bbv], assignment: &[usize], k: usize) -> Vec<Bbv> {
    let mut centroids: Vec<Bbv> = vec![BTreeMap::new(); k];
    let mut counts = vec![0usize; k];
    for (v, &c) in vectors.iter().zip(assignment) {
        counts[c] += 1;
        for (key, val) in v {
            *centroids[c].entry(*key).or_default() += val;
        }
    }
    for (c, centroid) in centroids.iter_mut().enumerate() {
        if counts[c] > 0 {
            for val in centroid.values_mut() {
                *val /= counts[c] as f64;
            }
        }
    }
    centroids
}

fn kmeans(vectors: &[Bbv], k: usize) -> Vec<usize> {
    // Farthest-point initialisation from interval 0 (deterministic).
    let mut seeds = vec![0usize];
    while seeds.len() < k {
        let Some(next) = (0..vectors.len()).max_by(|&a, &b| {
            let da = seeds
                .iter()
                .map(|&s| distance(&vectors[a], &vectors[s]))
                .fold(f64::MAX, f64::min);
            let db = seeds
                .iter()
                .map(|&s| distance(&vectors[b], &vectors[s]))
                .fold(f64::MAX, f64::min);
            da.total_cmp(&db)
        }) else {
            break; // no vectors: nothing left to seed
        };
        if seeds.contains(&next) {
            break;
        }
        seeds.push(next);
    }
    let mut centroids: Vec<Bbv> = seeds.iter().map(|&s| vectors[s].clone()).collect();
    let mut assignment = vec![0usize; vectors.len()];
    for _ in 0..20 {
        let mut changed = false;
        for (i, v) in vectors.iter().enumerate() {
            let best = (0..centroids.len())
                .min_by(|&a, &b| distance(v, &centroids[a]).total_cmp(&distance(v, &centroids[b])))
                // k ≥ 1 is enforced by the caller; 0 is a safe default.
                .unwrap_or(0);
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        centroids = centroids_of(vectors, &assignment, centroids.len());
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryAccess;

    /// A trace with two obvious phases: PC 1 for the first half, PC 2
    /// for the second.
    fn two_phase() -> Trace {
        let mut t = Trace::new("phases");
        for i in 0..1000u64 {
            t.push(MemoryAccess::new(0x40_0000, i * 64));
        }
        for i in 0..1000u64 {
            t.push(MemoryAccess::new(0x80_0000, i * 64));
        }
        t
    }

    #[test]
    fn distinct_phases_get_distinct_clusters() {
        let points = simpoints(&two_phase(), 100, 2);
        assert_eq!(points.len(), 2);
        // One representative from each half.
        assert!(points[0].start < 1000);
        assert!(points[1].start >= 1000);
        assert!((points[0].weight - 0.5).abs() < 1e-9);
    }

    #[test]
    fn weights_sum_to_one() {
        let trace = crate::gen::Benchmark::Soplex.generate(&crate::gen::GeneratorConfig::small());
        let points = simpoints(&trace, 500, 4);
        let total: f64 = points.iter().map(|p| p.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sample_trace_concatenates_intervals() {
        let trace = two_phase();
        let points = simpoints(&trace, 100, 2);
        let sampled = sample_trace(&trace, &points);
        assert_eq!(sampled.len(), 200);
        assert!(sampled.name().contains("simpoints"));
    }

    #[test]
    fn k_larger_than_intervals_is_clamped() {
        let mut t = Trace::new("tiny");
        for i in 0..50u64 {
            t.push(MemoryAccess::new(1, i * 64));
        }
        let points = simpoints(&t, 25, 10);
        assert!(points.len() <= 2);
    }

    #[test]
    fn empty_trace_yields_no_points() {
        assert!(simpoints(&Trace::new("e"), 100, 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "interval length must be positive")]
    fn zero_interval_rejected() {
        let _ = simpoints(&Trace::new("e"), 0, 3);
    }
}
