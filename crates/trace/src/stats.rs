//! Trace statistics (Table 2 of the paper).

use std::collections::HashSet;

use crate::Trace;

/// Unique-entity counts for a trace, as reported in the paper's Table 2
/// (number of PCs, unique cache-line addresses, and unique pages).
///
/// # Example
///
/// ```
/// use voyager_trace::{MemoryAccess, Trace};
/// use voyager_trace::stats::TraceStats;
///
/// let trace = Trace::from_accesses(
///     "t",
///     vec![MemoryAccess::new(1, 0x1000), MemoryAccess::new(1, 0x1040)],
/// );
/// let s = TraceStats::of(&trace);
/// assert_eq!((s.unique_pcs, s.unique_addresses, s.unique_pages), (1, 2, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Number of distinct load PCs.
    pub unique_pcs: usize,
    /// Number of distinct cache-line addresses.
    pub unique_addresses: usize,
    /// Number of distinct 4 KiB pages.
    pub unique_pages: usize,
    /// Total accesses in the trace.
    pub accesses: usize,
}

impl TraceStats {
    /// Computes statistics for a trace.
    pub fn of(trace: &Trace) -> Self {
        let mut pcs = HashSet::new();
        let mut lines = HashSet::new();
        let mut pages = HashSet::new();
        for a in trace {
            pcs.insert(a.pc);
            lines.insert(a.line());
            pages.insert(a.page());
        }
        TraceStats {
            unique_pcs: pcs.len(),
            unique_addresses: lines.len(),
            unique_pages: pages.len(),
            accesses: trace.len(),
        }
    }
}

impl std::fmt::Display for TraceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} PCs, {} addresses, {} pages over {} accesses",
            self.unique_pcs, self.unique_addresses, self.unique_pages, self.accesses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryAccess;

    #[test]
    fn empty_trace_is_all_zero() {
        let s = TraceStats::of(&Trace::new("empty"));
        assert_eq!(s, TraceStats::default());
    }

    #[test]
    fn counts_are_deduplicated() {
        let trace = Trace::from_accesses(
            "t",
            vec![
                MemoryAccess::new(1, 0x0000),
                MemoryAccess::new(1, 0x0000),
                MemoryAccess::new(2, 0x0040),
                MemoryAccess::new(2, 0x2000),
            ],
        );
        let s = TraceStats::of(&trace);
        assert_eq!(s.unique_pcs, 2);
        assert_eq!(s.unique_addresses, 3);
        assert_eq!(s.unique_pages, 2);
        assert_eq!(s.accesses, 4);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!TraceStats::default().to_string().is_empty());
    }
}
