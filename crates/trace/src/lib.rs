//! Memory-access traces for the Voyager prefetcher reproduction.
//!
//! The paper evaluates on SimPoint traces of irregular SPEC 2006 and GAP
//! benchmarks plus proprietary Google `search`/`ads` server traces. None
//! of those inputs can ship with this repository, so this crate provides
//! *workload generators* that execute the same data-structure walks the
//! benchmarks' hot loops perform and emit the resulting load-address
//! stream (see `DESIGN.md`, substitution 1 and 2):
//!
//! * [`gen::Benchmark`] — the 11 workloads of Table 2 (`astar`, `bfs`,
//!   `cc`, `mcf`, `omnetpp`, `pr`, `soplex`, `sphinx`, `xalancbmk`,
//!   `search`, `ads`). The GAP kernels (`bfs`/`cc`/`pr`) genuinely run on
//!   a generated CSR graph; the SPEC-like generators reproduce the
//!   pointer-chasing / heap / simplex / tree patterns described in the
//!   paper (Figures 13, 14 and 16).
//! * [`stats::TraceStats`] — the per-benchmark counts of Table 2.
//! * [`labels`] — the five labeling schemes of Section 4.4 (global, PC,
//!   basic block, spatial, co-occurrence) used for multi-label training.
//! * [`vocab`] — the hierarchical page/offset vocabulary with delta
//!   tokens for infrequent addresses (Section 4.3).
//! * [`simpoint`] — SimPoint-style phase sampling (the paper's trace
//!   selection methodology) and [`serialize`] — a binary on-disk trace
//!   format.
//!
//! # Example
//!
//! ```
//! use voyager_trace::gen::{Benchmark, GeneratorConfig};
//! use voyager_trace::stats::TraceStats;
//!
//! let trace = Benchmark::Bfs.generate(&GeneratorConfig::small());
//! assert!(!trace.is_empty());
//! let stats = TraceStats::of(&trace);
//! assert!(stats.unique_pages > 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;

/// Deterministic PRNG shared across the workspace (re-exported from
/// [`voyager_tensor`] so generator code and tests need no extra dep).
pub use voyager_tensor::rng;

pub mod gen;
pub mod labels;
pub mod serialize;
pub mod simpoint;
pub mod stats;
pub mod vocab;

pub use access::{
    line_of, offset_of, page_of, MemoryAccess, Trace, LINE_BYTES, OFFSETS_PER_PAGE, PAGE_BYTES,
};
