//! The hierarchical page/offset vocabulary with delta tokens
//! (Sections 4.2 and 4.3 of the paper).
//!
//! Voyager decomposes each address into a page and a 6-bit line offset.
//! Pages form the large half of the vocabulary; offsets are fixed at 64.
//! To cover compulsory misses and avoid wasting capacity on one-off
//! addresses, infrequent addresses (fewer than 2 occurrences, found by a
//! profiling pass) are represented as *deltas* from the previous access:
//! the page token becomes a marked delta entry and the offset token
//! becomes the offset difference modulo 64. The paper finds that 10
//! deltas cover 99% of mcf's compulsory misses.

use std::collections::{BTreeMap, HashMap};

use crate::{MemoryAccess, Trace, OFFSETS_PER_PAGE};

/// Configuration of the vocabulary builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VocabConfig {
    /// Maximum number of distinct pages kept in the vocabulary (most
    /// frequent first). Pages beyond this map to the delta or rare
    /// tokens. This bounds the model's output layer — the paper's
    /// class-explosion mitigation.
    pub max_pages: usize,
    /// Maximum number of distinct page-delta tokens (the paper uses 10).
    pub max_deltas: usize,
    /// Addresses seen fewer than this many times are represented as
    /// deltas (the paper uses 2).
    pub min_address_freq: u32,
    /// Maximum number of distinct PC tokens (rarely-seen PCs share a
    /// rare token).
    pub max_pcs: usize,
}

impl Default for VocabConfig {
    fn default() -> Self {
        VocabConfig {
            max_pages: 4096,
            max_deltas: 10,
            min_address_freq: 2,
            max_pcs: 4096,
        }
    }
}

impl VocabConfig {
    /// A configuration without delta tokens — the "Voyager w/o delta"
    /// ablation of Section 5.3.1.
    pub fn without_deltas(mut self) -> Self {
        self.max_deltas = 0;
        self
    }
}

/// A page-position token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageToken {
    /// A concrete page from the page vocabulary.
    Page(u64),
    /// A page delta relative to the previous access (marked entries,
    /// the paper's "d:" prefix).
    Delta(i64),
    /// Out-of-vocabulary; the model cannot predict these.
    Rare,
}

/// One access after tokenization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenizedAccess {
    /// PC token id in `0..pc_vocab_len`.
    pub pc: u32,
    /// Page token id in `0..page_vocab_len` (pages, then deltas, then
    /// the rare token).
    pub page: u32,
    /// Offset token in `0..64`: the literal line offset for page
    /// entries, or the offset delta modulo 64 for delta entries.
    pub offset: u32,
}

/// The hierarchical vocabulary built from a profiling pass over a trace.
///
/// # Example
///
/// ```
/// use voyager_trace::gen::{Benchmark, GeneratorConfig};
/// use voyager_trace::vocab::{VocabConfig, Vocabulary};
///
/// let trace = Benchmark::Bfs.generate(&GeneratorConfig::small());
/// let vocab = Vocabulary::build(&trace, &VocabConfig::default());
/// let tokens = vocab.tokenize(&trace);
/// assert_eq!(tokens.len(), trace.len());
/// assert!(vocab.page_vocab_len() <= 4096 + 10 + 1);
/// ```
#[derive(Debug, Clone)]
pub struct Vocabulary {
    pages: Vec<u64>,
    page_index: HashMap<u64, u32>,
    deltas: Vec<i64>,
    delta_index: HashMap<i64, u32>,
    pcs: Vec<u64>,
    pc_index: HashMap<u64, u32>,
    frequent_lines: std::collections::HashSet<u64>,
    config: VocabConfig,
}

impl Vocabulary {
    /// Profiles `trace` and builds the vocabulary.
    pub fn build(trace: &Trace, config: &VocabConfig) -> Self {
        let mut line_freq: BTreeMap<u64, u32> = BTreeMap::new();
        let mut page_freq: BTreeMap<u64, u32> = BTreeMap::new();
        let mut pc_freq: BTreeMap<u64, u32> = BTreeMap::new();
        for a in trace {
            *line_freq.entry(a.line()).or_default() += 1;
            *page_freq.entry(a.page()).or_default() += 1;
            *pc_freq.entry(a.pc).or_default() += 1;
        }
        let frequent_lines = line_freq
            .iter()
            .filter(|&(_, &f)| f >= config.min_address_freq)
            .map(|(&l, _)| l)
            .collect();

        let pages = top_keys(&page_freq, config.max_pages);
        let pcs = top_keys(&pc_freq, config.max_pcs);

        // Delta profiling: page deltas at the positions that will use the
        // delta representation (infrequent lines).
        let mut delta_freq: BTreeMap<i64, u32> = BTreeMap::new();
        let mut prev_page: Option<u64> = None;
        for a in trace {
            if let Some(prev) = prev_page {
                if line_freq[&a.line()] < config.min_address_freq {
                    let d = a.page() as i64 - prev as i64;
                    *delta_freq.entry(d).or_default() += 1;
                }
            }
            prev_page = Some(a.page());
        }
        let deltas = top_keys(&delta_freq, config.max_deltas);

        let page_index = pages
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as u32))
            .collect();
        let delta_index = deltas
            .iter()
            .enumerate()
            .map(|(i, &d)| (d, i as u32))
            .collect();
        let pc_index = pcs
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as u32))
            .collect();
        Vocabulary {
            pages,
            page_index,
            deltas,
            delta_index,
            pcs,
            pc_index,
            frequent_lines,
            config: *config,
        }
    }

    /// Size of the page token space: pages + deltas + 1 rare token.
    pub fn page_vocab_len(&self) -> usize {
        self.pages.len() + self.deltas.len() + 1
    }

    /// Size of the offset token space (always 64).
    pub fn offset_vocab_len(&self) -> usize {
        OFFSETS_PER_PAGE
    }

    /// Size of the PC token space: PCs + 1 rare token.
    pub fn pc_vocab_len(&self) -> usize {
        self.pcs.len() + 1
    }

    /// Number of delta entries in the vocabulary.
    pub fn num_deltas(&self) -> usize {
        self.deltas.len()
    }

    /// Id of the rare page token.
    pub fn rare_page_token(&self) -> u32 {
        (self.pages.len() + self.deltas.len()) as u32
    }

    /// Decodes a page token id.
    pub fn page_token(&self, id: u32) -> PageToken {
        let id = id as usize;
        if id < self.pages.len() {
            PageToken::Page(self.pages[id])
        } else if id < self.pages.len() + self.deltas.len() {
            PageToken::Delta(self.deltas[id - self.pages.len()])
        } else {
            PageToken::Rare
        }
    }

    /// PC token for a raw PC (rare token if out of vocabulary).
    pub fn pc_token(&self, pc: u64) -> u32 {
        self.pc_index
            .get(&pc)
            .copied()
            .unwrap_or(self.pcs.len() as u32)
    }

    /// Tokenizes one access given the previous access (None for the
    /// first).
    pub fn tokenize_access(
        &self,
        prev: Option<&MemoryAccess>,
        a: &MemoryAccess,
    ) -> TokenizedAccess {
        let pc = self.pc_token(a.pc);
        let frequent = self.frequent_lines.contains(&a.line());
        let in_page_vocab = self.page_index.contains_key(&a.page());
        if frequent && in_page_vocab {
            TokenizedAccess {
                pc,
                page: self.page_index[&a.page()],
                offset: a.offset() as u32,
            }
        } else if let Some(prev) = prev {
            // Delta representation relative to the previous access.
            let d = a.page() as i64 - prev.page() as i64;
            match self.delta_index.get(&d) {
                Some(&di) => TokenizedAccess {
                    pc,
                    page: self.pages.len() as u32 + di,
                    offset: (a.offset() as i64 - prev.offset() as i64)
                        .rem_euclid(OFFSETS_PER_PAGE as i64) as u32,
                },
                None if in_page_vocab => TokenizedAccess {
                    pc,
                    page: self.page_index[&a.page()],
                    offset: a.offset() as u32,
                },
                None => TokenizedAccess {
                    pc,
                    page: self.rare_page_token(),
                    offset: a.offset() as u32,
                },
            }
        } else if in_page_vocab {
            TokenizedAccess {
                pc,
                page: self.page_index[&a.page()],
                offset: a.offset() as u32,
            }
        } else {
            TokenizedAccess {
                pc,
                page: self.rare_page_token(),
                offset: a.offset() as u32,
            }
        }
    }

    /// Tokenizes a whole trace.
    pub fn tokenize(&self, trace: &Trace) -> Vec<TokenizedAccess> {
        let mut out = Vec::with_capacity(trace.len());
        let mut prev: Option<&MemoryAccess> = None;
        for a in trace {
            out.push(self.tokenize_access(prev, a));
            prev = Some(a);
        }
        out
    }

    /// Resolves a predicted `(page token, offset token)` pair into a
    /// concrete cache-line address, given the access the prediction was
    /// made *from* (needed to resolve delta tokens). Returns `None` for
    /// the rare token.
    pub fn resolve_prediction(
        &self,
        current: &MemoryAccess,
        page_tok: u32,
        offset_tok: u32,
    ) -> Option<u64> {
        debug_assert!((offset_tok as usize) < OFFSETS_PER_PAGE);
        match self.page_token(page_tok) {
            PageToken::Page(p) => Some(p * OFFSETS_PER_PAGE as u64 + offset_tok as u64),
            PageToken::Delta(d) => {
                let page = current.page() as i64 + d;
                if page < 0 {
                    return None;
                }
                let off = (current.offset() as i64 + offset_tok as i64) % OFFSETS_PER_PAGE as i64;
                Some(page as u64 * OFFSETS_PER_PAGE as u64 + off as u64)
            }
            PageToken::Rare => None,
        }
    }

    /// The builder configuration.
    pub fn config(&self) -> &VocabConfig {
        &self.config
    }
}

fn top_keys<K: Copy + Ord>(freq: &BTreeMap<K, u32>, limit: usize) -> Vec<K> {
    let mut entries: Vec<(K, u32)> = freq.iter().map(|(&k, &v)| (k, v)).collect();
    // Sort by descending frequency, tie-break on key for determinism.
    entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    entries.truncate(limit);
    entries.into_iter().map(|(k, _)| k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_trace() -> Trace {
        // Lines: page 1 offset 0 (x3), page 1 offset 5 (x2), page 2
        // offset 1 (x1, infrequent), page 3 offset 2 (x1, infrequent).
        Trace::from_accesses(
            "t",
            vec![
                MemoryAccess::new(10, 4096),           // page 1, off 0
                MemoryAccess::new(10, 4096 + 5 * 64),  // page 1, off 5
                MemoryAccess::new(11, 8192 + 64),      // page 2, off 1 (rare line)
                MemoryAccess::new(11, 12288 + 2 * 64), // page 3, off 2 (rare line)
                MemoryAccess::new(10, 4096),
                MemoryAccess::new(10, 4096 + 5 * 64),
                MemoryAccess::new(10, 4096),
            ],
        )
    }

    #[test]
    fn frequent_addresses_get_page_tokens() {
        let trace = small_trace();
        let vocab = Vocabulary::build(&trace, &VocabConfig::default());
        let toks = vocab.tokenize(&trace);
        assert!(matches!(vocab.page_token(toks[0].page), PageToken::Page(1)));
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 5);
    }

    #[test]
    fn infrequent_addresses_become_deltas() {
        let trace = small_trace();
        let vocab = Vocabulary::build(&trace, &VocabConfig::default());
        let toks = vocab.tokenize(&trace);
        // Access 2 (page 2, after page 1) is infrequent: delta +1.
        assert!(matches!(
            vocab.page_token(toks[2].page),
            PageToken::Delta(1)
        ));
        // Offset delta: 1 - 5 mod 64 = 60.
        assert_eq!(toks[2].offset, 60);
        // Access 3 (page 3 after page 2): delta +1 again.
        assert!(matches!(
            vocab.page_token(toks[3].page),
            PageToken::Delta(1)
        ));
    }

    #[test]
    fn without_deltas_maps_infrequent_to_rare_or_page() {
        let trace = small_trace();
        let vocab = Vocabulary::build(&trace, &VocabConfig::default().without_deltas());
        assert_eq!(vocab.num_deltas(), 0);
        let toks = vocab.tokenize(&trace);
        // With pages 2 and 3 still in the page vocabulary, the fallback
        // uses the concrete page.
        assert!(matches!(
            vocab.page_token(toks[2].page),
            PageToken::Page(2) | PageToken::Rare
        ));
    }

    #[test]
    fn resolve_page_prediction() {
        let trace = small_trace();
        let vocab = Vocabulary::build(&trace, &VocabConfig::default());
        let cur = MemoryAccess::new(10, 4096);
        let toks = vocab.tokenize(&trace);
        let line = vocab
            .resolve_prediction(&cur, toks[1].page, toks[1].offset)
            .unwrap();
        assert_eq!(line, trace[1].line());
    }

    #[test]
    fn resolve_delta_prediction_reconstructs_line() {
        let trace = small_trace();
        let vocab = Vocabulary::build(&trace, &VocabConfig::default());
        let toks = vocab.tokenize(&trace);
        // Prediction made from access 1 resolves access 2's line.
        let line = vocab
            .resolve_prediction(&trace[1], toks[2].page, toks[2].offset)
            .unwrap();
        assert_eq!(line, trace[2].line());
    }

    #[test]
    fn rare_token_resolves_to_none() {
        let trace = small_trace();
        let vocab = Vocabulary::build(&trace, &VocabConfig::default());
        let cur = MemoryAccess::new(10, 4096);
        assert_eq!(
            vocab.resolve_prediction(&cur, vocab.rare_page_token(), 0),
            None
        );
    }

    #[test]
    fn page_vocab_is_capped() {
        let mut accesses = Vec::new();
        for i in 0..100u64 {
            // Every page visited 3 times -> all frequent.
            for _ in 0..3 {
                accesses.push(MemoryAccess::new(1, i * 4096));
            }
        }
        let trace = Trace::from_accesses("t", accesses);
        let cfg = VocabConfig {
            max_pages: 16,
            ..VocabConfig::default()
        };
        let vocab = Vocabulary::build(&trace, &cfg);
        assert_eq!(vocab.page_vocab_len(), 16 + vocab.num_deltas() + 1);
    }

    #[test]
    fn pc_tokens_cover_vocab_and_rare() {
        let trace = small_trace();
        let vocab = Vocabulary::build(&trace, &VocabConfig::default());
        assert!(vocab.pc_token(10) < vocab.pc_vocab_len() as u32 - 1);
        assert_eq!(vocab.pc_token(0xdead), vocab.pc_vocab_len() as u32 - 1);
    }

    #[test]
    fn offsets_always_below_64() {
        let trace = crate::gen::Benchmark::Mcf.generate(&crate::gen::GeneratorConfig::small());
        let vocab = Vocabulary::build(&trace, &VocabConfig::default());
        for t in vocab.tokenize(&trace) {
            assert!(t.offset < 64);
        }
    }
}
