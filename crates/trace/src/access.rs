//! The memory-access record and trace container.

use std::fmt;

/// Bytes per cache line (64, as in the paper's ChampSim configuration).
pub const LINE_BYTES: u64 = 64;

/// Bytes per page (4 KiB).
pub const PAGE_BYTES: u64 = 4096;

/// Cache-line offsets per page (`PAGE_BYTES / LINE_BYTES` = 64).
///
/// This is the fixed size of Voyager's offset vocabulary (Section 4.2 of
/// the paper: "the number of unique offsets is fixed at 64").
pub const OFFSETS_PER_PAGE: usize = (PAGE_BYTES / LINE_BYTES) as usize;

/// Cache-line number of a byte address.
pub fn line_of(addr: u64) -> u64 {
    addr / LINE_BYTES
}

/// Page number of a byte address.
pub fn page_of(addr: u64) -> u64 {
    addr / PAGE_BYTES
}

/// Cache-line offset within the page of a byte address (0..64).
pub fn offset_of(addr: u64) -> usize {
    ((addr % PAGE_BYTES) / LINE_BYTES) as usize
}

/// One load in a memory-access trace.
///
/// `bubble` is the number of non-memory instructions retired between the
/// previous load and this one; the simulator uses it to reconstruct an
/// instruction stream for IPC accounting (the Google traces in the paper
/// have `bubble` information stripped, which is why `search`/`ads` are
/// only evaluated with the unified accuracy/coverage metric).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryAccess {
    /// Program counter of the load instruction.
    pub pc: u64,
    /// Virtual byte address being loaded.
    pub addr: u64,
    /// Non-memory instructions preceding this load.
    pub bubble: u8,
}

impl MemoryAccess {
    /// Creates an access with the given PC and address and a default
    /// bubble of 3 instructions.
    pub fn new(pc: u64, addr: u64) -> Self {
        MemoryAccess {
            pc,
            addr,
            bubble: 3,
        }
    }

    /// Cache-line number of the address.
    pub fn line(&self) -> u64 {
        line_of(self.addr)
    }

    /// Page number of the address.
    pub fn page(&self) -> u64 {
        page_of(self.addr)
    }

    /// Cache-line offset within the page (0..64).
    pub fn offset(&self) -> usize {
        offset_of(self.addr)
    }
}

/// A named sequence of memory accesses.
///
/// # Example
///
/// ```
/// use voyager_trace::{MemoryAccess, Trace};
///
/// let trace: Trace = vec![MemoryAccess::new(0x400000, 0x10000)]
///     .into_iter()
///     .collect();
/// assert_eq!(trace.len(), 1);
/// assert_eq!(trace[0].page(), 0x10);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    name: String,
    accesses: Vec<MemoryAccess>,
}

impl Trace {
    /// Creates an empty trace with a name.
    pub fn new(name: impl Into<String>) -> Self {
        Trace {
            name: name.into(),
            accesses: Vec::new(),
        }
    }

    /// Creates a trace from parts.
    pub fn from_accesses(name: impl Into<String>, accesses: Vec<MemoryAccess>) -> Self {
        Trace {
            name: name.into(),
            accesses,
        }
    }

    /// The trace's name (usually the benchmark name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Returns `true` if the trace has no accesses.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Appends an access.
    pub fn push(&mut self, access: MemoryAccess) {
        self.accesses.push(access);
    }

    /// Borrows the accesses as a slice.
    pub fn as_slice(&self) -> &[MemoryAccess] {
        &self.accesses
    }

    /// Iterates over the accesses.
    pub fn iter(&self) -> std::slice::Iter<'_, MemoryAccess> {
        self.accesses.iter()
    }

    /// Truncates the trace to at most `len` accesses.
    pub fn truncate(&mut self, len: usize) {
        self.accesses.truncate(len);
    }

    /// Total instruction count implied by the trace (loads plus
    /// bubbles), used for IPC accounting.
    pub fn instruction_count(&self) -> u64 {
        self.accesses.iter().map(|a| 1 + a.bubble as u64).sum()
    }
}

impl std::ops::Index<usize> for Trace {
    type Output = MemoryAccess;

    fn index(&self, idx: usize) -> &MemoryAccess {
        &self.accesses[idx]
    }
}

impl FromIterator<MemoryAccess> for Trace {
    fn from_iter<I: IntoIterator<Item = MemoryAccess>>(iter: I) -> Self {
        Trace {
            name: String::from("anonymous"),
            accesses: iter.into_iter().collect(),
        }
    }
}

impl Extend<MemoryAccess> for Trace {
    fn extend<I: IntoIterator<Item = MemoryAccess>>(&mut self, iter: I) {
        self.accesses.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a MemoryAccess;
    type IntoIter = std::slice::Iter<'a, MemoryAccess>;

    fn into_iter(self) -> Self::IntoIter {
        self.accesses.iter()
    }
}

impl IntoIterator for Trace {
    type Item = MemoryAccess;
    type IntoIter = std::vec::IntoIter<MemoryAccess>;

    fn into_iter(self) -> Self::IntoIter {
        self.accesses.into_iter()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} accesses)", self.name, self.accesses.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_decomposition() {
        // Address 0x12345: page 0x12, line offset within page:
        // (0x345 / 64) = 13.
        let a = MemoryAccess::new(0x400000, 0x12345);
        assert_eq!(a.page(), 0x12);
        assert_eq!(a.offset(), 13);
        assert_eq!(a.line(), 0x12345 / 64);
    }

    #[test]
    fn offsets_per_page_is_64() {
        assert_eq!(OFFSETS_PER_PAGE, 64);
        // Every representable offset is < 64.
        for addr in (0..PAGE_BYTES).step_by(LINE_BYTES as usize) {
            assert!(offset_of(addr) < OFFSETS_PER_PAGE);
        }
    }

    #[test]
    fn page_and_offset_reconstruct_line() {
        let addr = 0xdeadbeef_u64;
        let line = line_of(addr);
        let reconstructed = page_of(addr) * OFFSETS_PER_PAGE as u64 + offset_of(addr) as u64;
        assert_eq!(line, reconstructed);
    }

    #[test]
    fn trace_collect_and_iterate() {
        let trace: Trace = (0..5)
            .map(|i| MemoryAccess::new(0x400000 + i, 0x1000 * i))
            .collect();
        assert_eq!(trace.len(), 5);
        assert!(!trace.is_empty());
        assert_eq!(trace.iter().count(), 5);
        assert_eq!((&trace).into_iter().count(), 5);
        assert_eq!(trace[2].addr, 0x2000);
    }

    #[test]
    fn instruction_count_includes_bubbles() {
        let mut trace = Trace::new("t");
        trace.push(MemoryAccess {
            pc: 1,
            addr: 0,
            bubble: 4,
        });
        trace.push(MemoryAccess {
            pc: 2,
            addr: 64,
            bubble: 0,
        });
        assert_eq!(trace.instruction_count(), 5 + 1);
    }

    #[test]
    fn extend_and_truncate() {
        let mut trace = Trace::new("t");
        trace.extend((0..10).map(|i| MemoryAccess::new(1, i * 64)));
        trace.truncate(3);
        assert_eq!(trace.len(), 3);
    }

    #[test]
    fn display_contains_name_and_len() {
        let trace = Trace::from_accesses("bfs", vec![MemoryAccess::new(1, 2)]);
        let s = trace.to_string();
        assert!(s.contains("bfs") && s.contains('1'));
    }
}
