//! Google `search`/`ads`-like OLTP request-processing generators.
//!
//! The paper's search/ads traces come from production servers and are
//! proprietary; these generators reproduce their published structural
//! properties (Table 2: thousands to tens of thousands of PCs, ~1M
//! unique addresses, tens of thousands of pages) with the request
//! anatomy of an online serving system: hash-bucket pointer chasing over
//! Zipf-popular keys, posting-list streaming bursts, scoring scatter
//! loads, and short-lived per-request allocation. Like the paper's
//! traces, they carry no timing, so only the unified accuracy/coverage
//! metric applies.

use crate::rng::Rng;

use super::util::{code, mix64, region, TraceBuilder, Zipf};
use super::GeneratorConfig;
use crate::Trace;

struct OltpShape {
    name: &'static str,
    /// Number of basic blocks per pipeline stage pool (controls unique
    /// PC count; ads has ~3x the code footprint of search).
    stage_blocks: u64,
    /// Number of distinct terms/keys.
    keys: usize,
    /// Documents per posting-list streaming burst.
    burst: u64,
    /// Size of the per-request feature tables (ads only).
    feature_tables: u64,
}

fn run(shape: &OltpShape, cfg: &GeneratorConfig, rng: &mut impl Rng) -> Trace {
    let mut b = TraceBuilder::new(shape.name, cfg.accesses);
    let index_buckets = region(40); // hash table buckets
    let index_entries = region(41); // chained entries
    let postings = region(42); // posting lists
    let docs = region(43); // document metadata
    let arena = region(44); // per-request scratch allocations
    let features = region(45); // feature-hash tables (ads)
    let zipf = Zipf::new(shape.keys, 0.9);
    let mut request = 0u64;
    while !b.done() {
        request += 1;
        let n_terms = rng.gen_range(2..=5);
        // Per-request arena allocations: fresh lines from a recycled pool
        // (short-lived, mostly-compulsory within the trace window).
        let arena_base = arena + (request % 50_000) * 512;
        for i in 0..4u64 {
            b.load(pooled(shape, 0, i % 4, request + i), arena_base + i * 64, 1);
        }
        for t in 0..n_terms {
            let key = zipf.sample(rng) as u64;
            // Stage 1: bucket lookup + chain walk (1-3 pointer hops).
            let bucket = mix64(key) % 65_536;
            b.load(pooled(shape, 1, 0, key), index_buckets + bucket * 64, 2);
            let hops = 1 + (mix64(key * 3) % 3);
            for h in 0..hops {
                let entry = mix64(key * 7 + h) % 262_144;
                b.load(
                    pooled(shape, 1, 1 + h % 3, key + h),
                    index_entries + entry * 64,
                    2,
                );
            }
            // Stage 2: posting-list streaming burst (short sequential
            // runs; delta-compressed postings keep them modest).
            let list_base = postings + (mix64(key) % 32_768) * 4096;
            let burst = 3 + mix64(key * 11) % shape.burst;
            for i in 0..burst {
                b.load(pooled(shape, 2, i % 4, key % 127), list_base + i * 64, 1);
            }
            // Stage 3: doc scoring scatter loads.
            for i in 0..6u64 {
                let doc = mix64(key * 131 + i * 29 + request % 16) % 500_000;
                b.load(pooled(shape, 3, i % 4, key * 5 + i), docs + doc * 64, 3);
            }
            let _ = t;
        }
        // Ads only: feature-hash lookups over wide tables.
        for table in 0..shape.feature_tables {
            let slot = mix64(request * 17 + table * 257) % 200_000;
            b.load(
                pooled(shape, 4, table % 4, table * 101),
                features + table * 0x100_0000 + slot * 64,
                2,
            );
        }
    }
    b.finish()
}

fn pooled(shape: &OltpShape, stage: u64, slot: u64, salt: u64) -> u64 {
    code(
        200 + stage * shape.stage_blocks + mix64(salt * 2654435761) % shape.stage_blocks,
        slot,
    )
}

/// Google `search`-like trace (~6.7K PCs in Table 2).
pub(crate) fn search(cfg: &GeneratorConfig, rng: &mut impl Rng) -> Trace {
    run(
        &OltpShape {
            name: "search",
            stage_blocks: 280,
            keys: 50_000,
            burst: 12,
            feature_tables: 0,
        },
        cfg,
        rng,
    )
}

/// Google `ads`-like trace (~21K PCs in Table 2).
pub(crate) fn ads(cfg: &GeneratorConfig, rng: &mut impl Rng) -> Trace {
    run(
        &OltpShape {
            name: "ads",
            stage_blocks: 900,
            keys: 120_000,
            burst: 8,
            feature_tables: 12,
        },
        cfg,
        rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{SeedableRng, StdRng};
    use crate::stats::TraceStats;

    #[test]
    fn ads_has_more_pcs_and_pages_than_search() {
        let cfg = GeneratorConfig::medium();
        let mut rng = StdRng::seed_from_u64(1);
        let s = TraceStats::of(&search(&cfg, &mut rng));
        let mut rng = StdRng::seed_from_u64(1);
        let a = TraceStats::of(&ads(&cfg, &mut rng));
        assert!(a.unique_pcs > s.unique_pcs, "ads {a:?} vs search {s:?}");
    }

    #[test]
    fn search_mixes_streaming_and_pointer_chasing() {
        let cfg = GeneratorConfig::small();
        let trace = search(&cfg, &mut StdRng::seed_from_u64(2));
        let mut sequential = 0usize;
        let mut far = 0usize;
        for w in trace.as_slice().windows(2) {
            let d = w[1].line() as i64 - w[0].line() as i64;
            if d == 1 {
                sequential += 1;
            } else if d.unsigned_abs() > 1_000 {
                far += 1;
            }
        }
        assert!(sequential > trace.len() / 20, "missing streaming bursts");
        assert!(far > trace.len() / 10, "missing irregular jumps");
    }
}
