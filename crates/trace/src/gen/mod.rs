//! Synthetic workload generators for the 11 benchmarks of Table 2.
//!
//! Each generator *executes* the data-structure walk that dominates the
//! corresponding benchmark's misses and records the load stream. The GAP
//! kernels (`bfs`, `cc`, `pr`) run the real algorithms on a random CSR
//! graph; the SPEC-like and OLTP-like generators reproduce the access
//! mechanisms the paper describes (pointer chasing, event heaps, the
//! Fig. 16 simplex pattern, request processing with Zipf key popularity).

mod graph;
mod oltp;
mod spec;
mod zipf;

use crate::rng::{SeedableRng, StdRng};

use crate::Trace;

pub use graph::CsrGraph;
pub use zipf::{zipf_trace, ZipfSampler};

/// Parameters shared by all generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneratorConfig {
    /// Approximate number of memory accesses to generate. Generators may
    /// overshoot slightly while finishing an algorithmic step; traces
    /// are truncated to exactly this length.
    pub accesses: usize,
    /// RNG seed so traces are reproducible.
    pub seed: u64,
}

impl GeneratorConfig {
    /// A tiny configuration for unit tests (~8K accesses).
    pub fn small() -> Self {
        GeneratorConfig {
            accesses: 8_000,
            seed: 0xA5_0001,
        }
    }

    /// A medium configuration for quick experiments (~60K accesses).
    pub fn medium() -> Self {
        GeneratorConfig {
            accesses: 60_000,
            seed: 0xA5_0001,
        }
    }

    /// The default experiment configuration (~200K accesses).
    pub fn full() -> Self {
        GeneratorConfig {
            accesses: 200_000,
            seed: 0xA5_0001,
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different access budget.
    pub fn with_accesses(mut self, accesses: usize) -> Self {
        self.accesses = accesses;
        self
    }
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig::full()
    }
}

/// The benchmarks evaluated in the paper (Table 2).
///
/// # Example
///
/// ```
/// use voyager_trace::gen::{Benchmark, GeneratorConfig};
///
/// let trace = Benchmark::Pr.generate(&GeneratorConfig::small());
/// assert_eq!(trace.name(), "pr");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// SPEC 2006 `astar`: grid path-finding with an open-list heap.
    Astar,
    /// GAP breadth-first search on a CSR graph.
    Bfs,
    /// GAP connected components (label propagation) on a CSR graph.
    Cc,
    /// SPEC 2006 `mcf`: network-simplex pointer chasing with a growing
    /// arena (large footprint, many compulsory misses).
    Mcf,
    /// SPEC 2006 `omnetpp`: discrete-event simulation with a binary-heap
    /// event queue.
    Omnetpp,
    /// GAP PageRank on a CSR graph (the Fig. 13/14 example).
    Pr,
    /// SPEC 2006 `soplex`: simplex pivoting with the branch-dependent
    /// `upd/ub/lb/vec` pattern of Fig. 16.
    Soplex,
    /// SPEC 2006 `sphinx3`: acoustic-model scoring (streaming) plus
    /// dictionary lookups.
    Sphinx,
    /// SPEC 2006 `xalancbmk`: XML DOM tree traversals.
    Xalancbmk,
    /// Google `search`-like OLTP request processing (unified metric
    /// only, as in the paper).
    Search,
    /// Google `ads`-like OLTP request processing (unified metric only).
    Ads,
}

impl Benchmark {
    /// All 11 benchmarks in Table 2 order.
    pub fn all() -> [Benchmark; 11] {
        use Benchmark::*;
        [
            Astar, Bfs, Cc, Mcf, Omnetpp, Pr, Soplex, Sphinx, Xalancbmk, Search, Ads,
        ]
    }

    /// The nine SPEC/GAP benchmarks that run through the IPC simulator
    /// (the Google workloads carry no timing information).
    pub fn spec_gap() -> [Benchmark; 9] {
        use Benchmark::*;
        [Astar, Bfs, Cc, Mcf, Omnetpp, Pr, Soplex, Sphinx, Xalancbmk]
    }

    /// Lower-case benchmark name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Astar => "astar",
            Benchmark::Bfs => "bfs",
            Benchmark::Cc => "cc",
            Benchmark::Mcf => "mcf",
            Benchmark::Omnetpp => "omnetpp",
            Benchmark::Pr => "pr",
            Benchmark::Soplex => "soplex",
            Benchmark::Sphinx => "sphinx",
            Benchmark::Xalancbmk => "xalancbmk",
            Benchmark::Search => "search",
            Benchmark::Ads => "ads",
        }
    }

    /// Whether the trace carries timing (bubble) information suitable
    /// for IPC simulation. `false` for the Google-like traces, which —
    /// as in the paper — only support the unified accuracy/coverage
    /// metric.
    pub fn has_timing(&self) -> bool {
        !matches!(self, Benchmark::Search | Benchmark::Ads)
    }

    /// Generates the trace for this benchmark.
    pub fn generate(&self, cfg: &GeneratorConfig) -> Trace {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ (*self as u64).wrapping_mul(0x9E37_79B9));
        let mut trace = match self {
            Benchmark::Astar => spec::astar(cfg, &mut rng),
            Benchmark::Bfs => graph::bfs(cfg, &mut rng),
            Benchmark::Cc => graph::cc(cfg, &mut rng),
            Benchmark::Mcf => spec::mcf(cfg, &mut rng),
            Benchmark::Omnetpp => spec::omnetpp(cfg, &mut rng),
            Benchmark::Pr => graph::pr(cfg, &mut rng),
            Benchmark::Soplex => spec::soplex(cfg, &mut rng),
            Benchmark::Sphinx => spec::sphinx(cfg, &mut rng),
            Benchmark::Xalancbmk => spec::xalancbmk(cfg, &mut rng),
            Benchmark::Search => oltp::search(cfg, &mut rng),
            Benchmark::Ads => oltp::ads(cfg, &mut rng),
        };
        trace.truncate(cfg.accesses);
        trace
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Benchmark {
    type Err = ParseBenchmarkError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Benchmark::all()
            .into_iter()
            .find(|b| b.name() == s)
            .ok_or_else(|| ParseBenchmarkError {
                name: s.to_string(),
            })
    }
}

/// Error returned when parsing an unknown benchmark name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBenchmarkError {
    name: String,
}

impl std::fmt::Display for ParseBenchmarkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown benchmark name: {:?}", self.name)
    }
}

impl std::error::Error for ParseBenchmarkError {}

/// Helpers shared by the generator modules.
pub(crate) mod util {
    use crate::rng::Rng;

    use crate::{MemoryAccess, Trace};

    /// Distinct, non-overlapping data regions. Each region spans 4 GiB of
    /// virtual address space so pages never collide across arrays.
    pub(crate) fn region(index: u64) -> u64 {
        0x10_0000_0000 + index * 0x1_0000_0000
    }

    /// Code region for load PCs. Sites within a loop body are placed in
    /// the same 64-byte block so that `pc >> 6` recovers basic blocks.
    pub(crate) fn code(block: u64, slot: u64) -> u64 {
        debug_assert!(slot < 8, "at most 8 load sites per basic block");
        0x40_0000 + block * 64 + slot * 8
    }

    /// Trace under construction.
    #[derive(Debug)]
    pub(crate) struct TraceBuilder {
        trace: Trace,
        target: usize,
    }

    impl TraceBuilder {
        /// Starts an empty trace named `name` aiming for `target`
        /// accesses.
        pub(crate) fn new(name: &str, target: usize) -> Self {
            TraceBuilder {
                trace: Trace::new(name),
                target,
            }
        }

        /// Records a load of `addr` at `pc` preceded by `bubble`
        /// non-memory instructions.
        pub(crate) fn load(&mut self, pc: u64, addr: u64, bubble: u8) {
            self.trace.push(MemoryAccess { pc, addr, bubble });
        }

        /// True once the access budget (plus slack for the current
        /// algorithmic step) is met.
        pub(crate) fn done(&self) -> bool {
            self.trace.len() >= self.target
        }

        /// Consumes the builder, yielding the finished trace.
        pub(crate) fn finish(self) -> Trace {
            self.trace
        }
    }

    /// Samples from a Zipf-like distribution over `0..n` with exponent
    /// `s` using rejection-free inverse-CDF approximation.
    #[derive(Debug, Clone)]
    pub(crate) struct Zipf {
        cdf: Vec<f64>,
    }

    impl Zipf {
        /// Builds the distribution table.
        ///
        /// # Panics
        ///
        /// Panics if `n == 0`.
        pub(crate) fn new(n: usize, s: f64) -> Self {
            assert!(n > 0, "zipf over empty support");
            let mut cdf = Vec::with_capacity(n);
            let mut total = 0.0;
            for k in 1..=n {
                total += 1.0 / (k as f64).powf(s);
                cdf.push(total);
            }
            for v in &mut cdf {
                *v /= total;
            }
            Zipf { cdf }
        }

        /// Draws one sample in `0..n`.
        pub(crate) fn sample<R: Rng>(&self, rng: &mut R) -> usize {
            let u: f64 = rng.gen();
            match self.cdf.binary_search_by(|p| p.total_cmp(&u)) {
                Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
            }
        }
    }

    /// Deterministic 64-bit hash (splitmix64 finalizer) used to spread
    /// logical entities over PC pools and hash buckets.
    pub(crate) fn mix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// Models a benchmark's *cold code footprint*: the hundreds or
    /// thousands of static load sites (initialisation, bookkeeping,
    /// rarely-taken paths) that account for most of a program's unique
    /// PCs (Table 2) while its cache misses concentrate in a handful of
    /// hot loads. Sweeps load from a large PC pool into a tiny hot data
    /// region, so they register in the PC statistics but are filtered
    /// by the L1 after warm-up and barely perturb the LLC stream.
    #[derive(Debug)]
    pub(crate) struct ColdCode {
        region: u64,
        base_block: u64,
        blocks: u64,
        counter: u64,
    }

    impl ColdCode {
        /// Creates a cold-code pool of roughly `blocks * 8` static load
        /// sites starting at `base_block`, touching data region
        /// `region_index`.
        pub(crate) fn new(region_index: u64, base_block: u64, blocks: u64) -> Self {
            ColdCode {
                region: region(region_index),
                base_block,
                blocks,
                counter: 0,
            }
        }

        /// Emits one sweep of `loads` bookkeeping loads. All loads hit
        /// the same two cache lines (globals/flags re-read on every
        /// path), so after the very first sweep they are L1-resident
        /// and never reach the LLC — they add PCs, not misses.
        pub(crate) fn sweep(&mut self, b: &mut TraceBuilder, loads: u64) {
            for i in 0..loads {
                let salt = self.counter.wrapping_mul(131).wrapping_add(i * 7);
                let pc = code(self.base_block + mix64(salt) % self.blocks, salt % 8);
                b.load(pc, self.region + (i % 2) * 64, 1);
            }
            self.counter += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;
    use std::str::FromStr;

    #[test]
    fn every_benchmark_generates_nonempty_deterministic_traces() {
        let cfg = GeneratorConfig::small();
        for b in Benchmark::all() {
            let t1 = b.generate(&cfg);
            let t2 = b.generate(&cfg);
            assert_eq!(t1.len(), cfg.accesses, "{b}: wrong length");
            assert_eq!(t1, t2, "{b}: not deterministic");
            assert_eq!(t1.name(), b.name());
        }
    }

    #[test]
    fn different_seeds_give_different_traces() {
        let a = Benchmark::Bfs.generate(&GeneratorConfig::small());
        let b = Benchmark::Bfs.generate(&GeneratorConfig::small().with_seed(99));
        assert_ne!(a, b);
    }

    #[test]
    fn parse_roundtrip() {
        for b in Benchmark::all() {
            assert_eq!(Benchmark::from_str(b.name()).unwrap(), b);
        }
        assert!(Benchmark::from_str("nope").is_err());
        let err = Benchmark::from_str("nope").unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn google_traces_have_no_timing() {
        assert!(!Benchmark::Search.has_timing());
        assert!(!Benchmark::Ads.has_timing());
        assert!(Benchmark::Mcf.has_timing());
    }

    #[test]
    fn pc_count_ordering_roughly_matches_table2() {
        // Table 2: mcf and astar have the fewest PCs; search and ads by
        // far the most.
        let cfg = GeneratorConfig::medium();
        let pcs = |b: Benchmark| TraceStats::of(&b.generate(&cfg)).unique_pcs;
        let mcf = pcs(Benchmark::Mcf);
        let astar = pcs(Benchmark::Astar);
        let search = pcs(Benchmark::Search);
        let ads = pcs(Benchmark::Ads);
        assert!(mcf < 600, "mcf PCs {mcf}");
        assert!(astar < 600, "astar PCs {astar}");
        assert!(search > 1_500, "search PCs {search}");
        assert!(ads > search, "ads {ads} <= search {search}");
    }

    #[test]
    fn mcf_has_largest_footprint_of_spec_gap() {
        let cfg = GeneratorConfig::medium();
        let pages = |b: Benchmark| TraceStats::of(&b.generate(&cfg)).unique_pages;
        let mcf = pages(Benchmark::Mcf);
        for b in [
            Benchmark::Bfs,
            Benchmark::Cc,
            Benchmark::Pr,
            Benchmark::Sphinx,
        ] {
            assert!(mcf > pages(b), "mcf {mcf} <= {b}");
        }
    }

    #[test]
    fn zipf_prefers_small_indices() {
        use crate::rng::{SeedableRng, StdRng};
        let z = util::Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut low = 0;
        for _ in 0..1000 {
            if z.sample(&mut rng) < 10 {
                low += 1;
            }
        }
        assert!(low > 300, "zipf not skewed: {low}/1000 in top 10");
    }

    #[test]
    fn cold_code_adds_pcs_without_data_footprint() {
        let mut b = util::TraceBuilder::new("t", 10_000);
        let mut cold = util::ColdCode::new(9, 100, 50);
        for _ in 0..40 {
            cold.sweep(&mut b, 48);
        }
        let trace = b.finish();
        let stats = crate::stats::TraceStats::of(&trace);
        assert!(
            stats.unique_pcs > 150,
            "cold pool under-covered: {}",
            stats.unique_pcs
        );
        assert!(
            stats.unique_addresses <= 2,
            "cold data must stay tiny: {}",
            stats.unique_addresses
        );
    }

    #[test]
    fn code_layout_groups_basic_blocks() {
        let a = util::code(3, 0);
        let b = util::code(3, 7);
        let c = util::code(4, 0);
        assert_eq!(a >> 6, b >> 6);
        assert_ne!(a >> 6, c >> 6);
    }
}
