//! GAP benchmark kernels (`bfs`, `cc`, `pr`) executed on a random CSR
//! graph.
//!
//! These are real implementations of the kernels: the emitted trace is
//! the load stream the algorithm performs on its arrays (CSR offsets,
//! target lists, per-vertex property arrays). This reproduces the exact
//! phenomenon the paper highlights in Figures 13/14: the stream of
//! neighbour ids is predictable only with enough context to capture the
//! parent vertex.

use std::collections::VecDeque;

use crate::rng::Rng;

use super::util::{code, region, ColdCode, TraceBuilder};
use super::GeneratorConfig;
use crate::Trace;

/// A compressed-sparse-row graph with both out- and in-edge views.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    n: usize,
    out_offsets: Vec<u32>,
    out_targets: Vec<u32>,
    in_offsets: Vec<u32>,
    in_targets: Vec<u32>,
}

impl CsrGraph {
    /// Generates a random directed graph with `n` vertices and average
    /// out-degree `avg_deg`, with skewed in-degrees (a few "hub"
    /// vertices), mimicking the scale-free inputs used by GAP.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `avg_deg == 0`.
    pub fn random<R: Rng>(n: usize, avg_deg: usize, rng: &mut R) -> Self {
        assert!(n > 0 && avg_deg > 0, "graph must be non-trivial");
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * avg_deg);
        for u in 0..n as u32 {
            let deg = rng.gen_range(1..=2 * avg_deg);
            for _ in 0..deg {
                // Square a uniform sample to skew toward low vertex ids,
                // producing hub vertices like real web/social graphs.
                let r: f64 = rng.gen();
                let v = ((r * r) * n as f64) as u32 % n as u32;
                edges.push((u, v));
            }
        }
        let out = Self::build_csr(n, edges.iter().copied());
        let inn = Self::build_csr(n, edges.iter().map(|&(u, v)| (v, u)));
        CsrGraph {
            n,
            out_offsets: out.0,
            out_targets: out.1,
            in_offsets: inn.0,
            in_targets: inn.1,
        }
    }

    fn build_csr(
        n: usize,
        edges: impl Iterator<Item = (u32, u32)> + Clone,
    ) -> (Vec<u32>, Vec<u32>) {
        let mut counts = vec![0u32; n + 1];
        for (u, _) in edges.clone() {
            counts[u as usize + 1] += 1;
        }
        for i in 1..=n {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0u32; offsets[n] as usize];
        for (u, v) in edges {
            targets[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
        }
        (offsets, targets)
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Out-neighbours of `u`.
    pub fn out_neigh(&self, u: usize) -> &[u32] {
        &self.out_targets[self.out_offsets[u] as usize..self.out_offsets[u + 1] as usize]
    }

    /// In-neighbours of `u`.
    pub fn in_neigh(&self, u: usize) -> &[u32] {
        &self.in_targets[self.in_offsets[u] as usize..self.in_offsets[u + 1] as usize]
    }
}

fn graph_size_for(cfg: &GeneratorConfig) -> usize {
    // One PageRank-style pass over the graph costs ~27n loads at average
    // degree 12; sizing n at accesses/170 gives ~4-6 passes per trace so
    // temporal prefetchers see the pattern recur across online-training
    // epochs, mirroring the paper's SimPoints which cover many
    // iterations. Table 2's property that GAP footprints are much
    // smaller than mcf's is preserved.
    (cfg.accesses / 170).clamp(512, 1_200)
}

// Memory regions (see Table 2: GAP benchmarks have small page counts —
// a handful of flat arrays). Element widths mirror the GAP suite:
// 4-byte neighbour ids, 8-byte CSR offsets, and wider per-vertex
// property records.
const R_OFFSETS: u64 = 0; // CSR offsets array (8 B / element)
const R_TARGETS: u64 = 1; // CSR targets array (4 B / element)
const R_PROP_A: u64 = 2; // parent / comp / scores (32 B / element)
const R_PROP_B: u64 = 3; // contrib / frontier payloads (32 B / element)

fn offsets_addr(base: u64, i: usize) -> u64 {
    let width = match base {
        R_TARGETS => 4,
        R_OFFSETS => 8,
        _ => 32,
    };
    region(base) + width * i as u64
}

/// GAP PageRank (the paper's Fig. 13 code: lines 43–51).
pub(crate) fn pr(cfg: &GeneratorConfig, rng: &mut impl Rng) -> Trace {
    let n = graph_size_for(cfg);
    let g = CsrGraph::random(n, 12, rng);
    let mut b = TraceBuilder::new("pr", cfg.accesses);
    // The GAP driver, timers and per-iteration bookkeeping contribute
    // most of the benchmark's ~650 static load PCs (Table 2).
    let mut cold = ColdCode::new(4, 700, 80);
    let mut scores = vec![1.0f32 / n as f32; n];
    let mut contrib = vec![0.0f32; n];
    'outer: loop {
        cold.sweep(&mut b, 48);
        // Line 43-44: outgoing_contrib[n] = scores[n] / out_degree(n)
        for u in 0..n {
            b.load(code(0, 0), offsets_addr(R_PROP_A, u), 2); // scores[u]
            b.load(code(0, 1), offsets_addr(R_OFFSETS, u), 1); // out_degree via offsets
            contrib[u] = scores[u] / g.out_neigh(u).len().max(1) as f32;
            if b.done() {
                break 'outer;
            }
        }
        // Line 45-51: incoming_total += outgoing_contrib[v] over in_neigh(u)
        for (u, score) in scores.iter_mut().enumerate() {
            b.load(code(1, 0), offsets_addr(R_OFFSETS, u), 2); // in_offsets[u]
            let mut total = 0.0;
            let (lo, hi) = (g.in_offsets[u] as usize, g.in_offsets[u + 1] as usize);
            for idx in lo..hi {
                let v = g.in_targets[idx] as usize;
                // Line 47: streaming load of the neighbour id.
                b.load(code(1, 1), offsets_addr(R_TARGETS, idx), 1);
                // Line 48: irregular load of contrib[v] — the hard one.
                b.load(code(1, 2), offsets_addr(R_PROP_B, v), 2);
                total += contrib[v];
            }
            // Line 49: scores[u]
            b.load(code(1, 3), offsets_addr(R_PROP_A, u), 3);
            *score = 0.15 / n as f32 + 0.85 * total;
            if b.done() {
                break 'outer;
            }
        }
    }
    b.finish()
}

/// GAP breadth-first search. Like the GAP benchmark driver, BFS runs
/// repeated trials; sources cycle through a small pool so the traversal
/// patterns recur across trials (and across online-training epochs).
pub(crate) fn bfs(cfg: &GeneratorConfig, rng: &mut impl Rng) -> Trace {
    let n = graph_size_for(cfg);
    let g = CsrGraph::random(n, 12, rng);
    let mut b = TraceBuilder::new("bfs", cfg.accesses);
    let mut cold = ColdCode::new(4, 800, 100);
    let sources: Vec<usize> = (0..2).map(|_| rng.gen_range(0..n)).collect();
    let mut trial = 0usize;
    'outer: while !b.done() {
        let source = sources[trial % sources.len()];
        trial += 1;
        cold.sweep(&mut b, 48);
        let mut parent = vec![u32::MAX; n];
        parent[source] = source as u32;
        let mut queue = VecDeque::from([source]);
        while let Some(u) = queue.pop_front() {
            b.load(code(2, 0), offsets_addr(R_OFFSETS, u), 2); // out_offsets[u]
            let (lo, hi) = (g.out_offsets[u] as usize, g.out_offsets[u + 1] as usize);
            for idx in lo..hi {
                let v = g.out_targets[idx] as usize;
                b.load(code(2, 1), offsets_addr(R_TARGETS, idx), 1); // stream
                b.load(code(2, 2), offsets_addr(R_PROP_A, v), 2); // parent[v]
                if parent[v] == u32::MAX {
                    parent[v] = u as u32;
                    queue.push_back(v);
                }
            }
            if b.done() {
                break 'outer;
            }
        }
    }
    b.finish()
}

/// GAP connected components by label propagation.
pub(crate) fn cc(cfg: &GeneratorConfig, rng: &mut impl Rng) -> Trace {
    let n = graph_size_for(cfg);
    let g = CsrGraph::random(n, 12, rng);
    let mut b = TraceBuilder::new("cc", cfg.accesses);
    let mut cold = ColdCode::new(4, 920, 64);
    let mut comp: Vec<u32> = (0..n as u32).collect();
    'outer: loop {
        cold.sweep(&mut b, 48);
        let mut changed = false;
        for u in 0..n {
            b.load(code(3, 0), offsets_addr(R_PROP_A, u), 2); // comp[u]
            b.load(code(3, 1), offsets_addr(R_OFFSETS, u), 1);
            let (lo, hi) = (g.out_offsets[u] as usize, g.out_offsets[u + 1] as usize);
            for idx in lo..hi {
                let v = g.out_targets[idx] as usize;
                b.load(code(3, 2), offsets_addr(R_TARGETS, idx), 1); // stream
                b.load(code(3, 3), offsets_addr(R_PROP_A, v), 2); // comp[v]
                if comp[v] < comp[u] {
                    comp[u] = comp[v];
                    changed = true;
                }
            }
            if b.done() {
                break 'outer;
            }
        }
        if !changed {
            // Converged: restart propagation with fresh labels to keep
            // generating until the budget is met.
            for (i, c) in comp.iter_mut().enumerate() {
                *c = i as u32;
            }
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{SeedableRng, StdRng};

    #[test]
    fn csr_roundtrip_edges() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = CsrGraph::random(100, 8, &mut rng);
        assert_eq!(g.num_nodes(), 100);
        assert!(g.num_edges() > 100);
        // Every out-edge (u -> v) appears as an in-edge of v.
        let mut out_pairs: Vec<(u32, u32)> = Vec::new();
        for u in 0..g.num_nodes() {
            for &v in g.out_neigh(u) {
                out_pairs.push((u as u32, v));
            }
        }
        let mut in_pairs: Vec<(u32, u32)> = Vec::new();
        for v in 0..g.num_nodes() {
            for &u in g.in_neigh(v) {
                in_pairs.push((u, v as u32));
            }
        }
        out_pairs.sort_unstable();
        in_pairs.sort_unstable();
        assert_eq!(out_pairs, in_pairs);
    }

    #[test]
    fn pr_emits_streaming_and_irregular_pcs() {
        let trace = pr(&GeneratorConfig::small(), &mut StdRng::seed_from_u64(1));
        // The irregular contrib load (code(1, 2)) must be present and
        // touch many distinct pages.
        let contrib_pc = code(1, 2);
        let pages: std::collections::HashSet<u64> = trace
            .iter()
            .filter(|a| a.pc == contrib_pc)
            .map(|a| a.page())
            .collect();
        assert!(
            pages.len() >= 3,
            "irregular PR load covers {} pages",
            pages.len()
        );
    }

    #[test]
    fn bfs_visits_many_vertices() {
        let trace = bfs(&GeneratorConfig::small(), &mut StdRng::seed_from_u64(2));
        let parent_pc = code(2, 2);
        let distinct: std::collections::HashSet<u64> = trace
            .iter()
            .filter(|a| a.pc == parent_pc)
            .map(|a| a.addr)
            .collect();
        assert!(distinct.len() > 100);
    }

    #[test]
    fn cc_trace_reaches_budget() {
        let cfg = GeneratorConfig::small();
        let trace = cc(&cfg, &mut StdRng::seed_from_u64(3));
        assert!(trace.len() >= cfg.accesses);
    }
}
