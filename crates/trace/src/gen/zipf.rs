//! Zipf-popularity trace generator with a vocabulary-scale page
//! footprint.
//!
//! The Section 5.5 vocabulary-scaling experiment needs traces whose
//! *distinct page count* is the experimental variable — up to millions
//! of pages, 100× beyond what the Table 2 generators touch. The
//! table-based [`util::Zipf`](super::util) sampler materializes an
//! `O(n)` CDF, which at millions of pages costs tens of megabytes and a
//! full scan to build; this module instead implements Hörmann &
//! Derflinger's *rejection-inversion* sampler ("Rejection-inversion to
//! generate variates from monotone discrete distributions", ACM TOMACS
//! 1996): `O(1)` memory, `O(1)` expected time per sample, exact Zipf
//! probabilities `P(k) ∝ k^-s` over `1..=n` for any `n` and any
//! exponent `s > 0`.

use crate::rng::{Rng, SeedableRng, StdRng};

use super::util::{code, TraceBuilder};
use super::GeneratorConfig;
use crate::Trace;

/// `O(1)`-memory sampler for the Zipf distribution `P(k) ∝ k^-s` over
/// `1..=n`, via rejection-inversion. Construction does a handful of
/// `powf` calls; sampling draws one uniform per attempt and accepts
/// with probability close to 1 (the envelope is tight for all `s`).
#[derive(Debug, Clone, Copy)]
pub struct ZipfSampler {
    n: f64,
    s: f64,
    /// `H(n + 1/2)` — lower end of the inversion range.
    h_sup: f64,
    /// `H(1/2) - H(n + 1/2)` — width of the inversion range.
    h_span: f64,
    /// Acceptance shortcut threshold from the paper (their `s`).
    shortcut: f64,
}

impl ZipfSampler {
    /// Builds a sampler over `1..=n` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s <= 0` (or not finite).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf over empty support");
        assert!(s > 0.0 && s.is_finite(), "zipf exponent must be positive");
        let nf = n as f64;
        let h_sup = h_integral(nf + 0.5, s);
        let h_span = h_integral(0.5, s) - h_sup;
        // The paper's shortcut constant: accept immediately when the
        // candidate is within `shortcut` of the inverted point.
        let shortcut = 2.0 - h_integral_inv(h_integral(2.5, s) - h(2.0, s), s);
        ZipfSampler {
            n: nf,
            s,
            h_sup,
            h_span,
            shortcut,
        }
    }

    /// Number of support points `n`.
    pub fn support(&self) -> usize {
        self.n as usize
    }

    /// Draws one 0-based rank in `0..n` (rank 0 is the most popular).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        loop {
            // u uniform in [H(n + 1/2), H(1/2)).
            let u = self.h_sup + rng.gen::<f64>() * self.h_span;
            let x = h_integral_inv(u, self.s);
            let k = x.clamp(1.0, self.n).round();
            if k - x <= self.shortcut || u >= h_integral(k + 0.5, self.s) - h(k, self.s) {
                return k as usize - 1;
            }
        }
    }
}

/// `H(x) = ∫ t^-s dt`: `(x^(1-s) - 1) / (1 - s)`, or `ln x` at `s = 1`.
fn h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    if (1.0 - s).abs() < 1e-9 {
        log_x
    } else {
        ((1.0 - s) * log_x).exp_m1() / (1.0 - s)
    }
}

/// `h(x) = x^-s`.
fn h(x: f64, s: f64) -> f64 {
    (-s * x.ln()).exp()
}

/// Inverse of [`h_integral`].
fn h_integral_inv(x: f64, s: f64) -> f64 {
    if (1.0 - s).abs() < 1e-9 {
        x.exp()
    } else {
        let t = (x * (1.0 - s)).max(-1.0);
        (t.ln_1p() / (1.0 - s)).exp()
    }
}

/// Generates a trace whose loads hit `pages` distinct pages with Zipf
/// popularity (`exponent` ≈ 0.8–1.2 matches the OLTP key skew the
/// paper cites). Page identity is scrambled with a 64-bit mix so
/// popular pages are scattered across the address space rather than
/// clustered at low addresses, and the cache-line offset within each
/// page follows a per-page stride — so both output heads see learnable
/// but non-trivial structure.
///
/// # Panics
///
/// Panics if `pages == 0` or the exponent is not positive.
pub fn zipf_trace(cfg: &GeneratorConfig, pages: usize, exponent: f64) -> Trace {
    let sampler = ZipfSampler::new(pages, exponent);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x51B7_F00D);
    let mut b = TraceBuilder::new("zipf", cfg.accesses);
    // Dedicated address base far above the util::region pool; pages
    // are 4 KiB apart so `addr >> 12` recovers the page rank bijection.
    let base: u64 = 0x100_0000_0000;
    let mut step: u64 = 0;
    while !b.done() {
        let rank = sampler.sample(&mut rng) as u64;
        // Bijective scramble of the rank within a power-of-two page
        // id space (odd multiplier mod 2^32): popularity is decoupled
        // from address order.
        let page = (rank.wrapping_mul(0x9E37_79B1)) & 0xFFFF_FFFF;
        let line = (rank.wrapping_mul(7).wrapping_add(step / 3)) % 64;
        let pc = code(4096 + (rank % 61), rank % 8);
        b.load(pc, base + page * 4096 + line * 64, 2);
        step += 1;
    }
    let mut t = b.finish();
    t.truncate(cfg.accesses);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn sampler_stays_in_support_at_million_scale() {
        // O(1) memory: constructing a 4M-point sampler is instant, and
        // every draw lands in 0..n.
        let n = 4_000_000;
        let z = ZipfSampler::new(n, 0.9);
        assert_eq!(z.support(), n);
        let mut rng = StdRng::seed_from_u64(7);
        let mut max_seen = 0;
        for _ in 0..20_000 {
            let k = z.sample(&mut rng);
            assert!(k < n);
            max_seen = max_seen.max(k);
        }
        // The tail is actually reachable.
        assert!(max_seen > n / 10, "tail never sampled: max {max_seen}");
    }

    #[test]
    fn sampler_matches_zipf_head_probabilities() {
        // Empirical P(0)/P(1) must approach 2^s (exact Zipf ratio).
        for s in [0.7, 1.0, 1.3] {
            let z = ZipfSampler::new(100_000, s);
            let mut rng = StdRng::seed_from_u64(11);
            let (mut c0, mut c1) = (0u32, 0u32);
            let draws = 200_000;
            for _ in 0..draws {
                match z.sample(&mut rng) {
                    0 => c0 += 1,
                    1 => c1 += 1,
                    _ => {}
                }
            }
            let ratio = c0 as f64 / c1 as f64;
            let want = 2f64.powf(s);
            assert!(
                (ratio - want).abs() / want < 0.15,
                "s={s}: P(0)/P(1) = {ratio}, want {want}"
            );
        }
    }

    #[test]
    fn sampler_is_skewed_toward_low_ranks() {
        let z = ZipfSampler::new(1_000_000, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let low = (0..10_000).filter(|_| z.sample(&mut rng) < 100).count();
        // With s=1 over 1M points, ranks 0..100 carry ~1/3 of the mass.
        assert!(low > 2_000, "not skewed: {low}/10000 in top 100");
    }

    #[test]
    fn trace_is_deterministic_and_wide() {
        let cfg = GeneratorConfig::small().with_seed(0xBEEF);
        let a = zipf_trace(&cfg, 2_000_000, 0.8);
        let b = zipf_trace(&cfg, 2_000_000, 0.8);
        assert_eq!(a, b);
        assert_eq!(a.len(), cfg.accesses);
        assert_eq!(a.name(), "zipf");
        let stats = TraceStats::of(&a);
        // 8K accesses over a 2M-page Zipf at s=0.8: most draws are
        // distinct pages.
        assert!(
            stats.unique_pages > cfg.accesses / 4,
            "footprint collapsed: {} pages",
            stats.unique_pages
        );
    }

    #[test]
    fn footprint_scales_with_page_count() {
        let cfg = GeneratorConfig::small();
        let narrow = TraceStats::of(&zipf_trace(&cfg, 4_096, 0.8)).unique_pages;
        let wide = TraceStats::of(&zipf_trace(&cfg, 2_000_000, 0.8)).unique_pages;
        assert!(
            wide > narrow * 2,
            "wide {wide} not larger than narrow {narrow}"
        );
        assert!(narrow <= 4_096);
    }
}
