//! SPEC CPU 2006-like irregular workload generators.
//!
//! Each generator executes a faithful miniature of the benchmark's hot
//! data-structure walk. Two structural properties of real binaries are
//! modelled explicitly:
//!
//! * **Hot loads are few.** Cache misses concentrate in a handful of
//!   static load sites, so each hot pattern is issued from one (or a
//!   couple of) fixed PCs — this is what makes PC localization (ISB)
//!   work on SPEC-like code.
//! * **Cold code is plentiful.** The large unique-PC counts of Table 2
//!   (169 for mcf up to 2129 for soplex) come from bookkeeping and
//!   rarely-executed paths; these are modelled with
//!   [`ColdCode`](super::util::ColdCode) sweeps whose loads are
//!   L1-resident and therefore invisible to the LLC.

use crate::rng::Rng;

use super::util::{code, mix64, region, ColdCode, TraceBuilder, Zipf};
use super::GeneratorConfig;
use crate::Trace;

/// SPEC `astar`: grid path-finding. Searches repeat over a fixed pool
/// of start cells (waypoint queries over the same map), producing
/// recurring traversal patterns; loads alternate between the open-list
/// heap, the spatially local grid scan, and per-cell cost arrays.
/// Table 2: 192 PCs.
pub(crate) fn astar(cfg: &GeneratorConfig, rng: &mut impl Rng) -> Trace {
    let mut b = TraceBuilder::new("astar", cfg.accesses);
    let dim = 256usize; // 256x256 grid
    let heap_region = region(10);
    let grid_region = region(11);
    let gcost_region = region(12);
    let starts: Vec<u32> = (0..8)
        .map(|_| rng.gen_range(0..(dim * dim)) as u32)
        .collect();
    let mut cold = ColdCode::new(9, 130, 22);
    let mut episode = 0usize;
    let mut heap: Vec<u32> = Vec::new();
    'outer: while !b.done() {
        // Recurring search episode.
        heap.clear();
        heap.push(starts[episode % starts.len()]);
        episode += 1;
        if episode.is_multiple_of(2) {
            cold.sweep(&mut b, 40);
        }
        let mut expanded = 0;
        // Deterministic per-episode expansion decisions so episodes
        // from the same start replay the same traversal.
        let mut decide = mix64(episode as u64 * 83);
        while let Some(cell) = pop_heap(&mut heap, &mut b, heap_region) {
            let (x, y) = ((cell as usize) % dim, (cell as usize) / dim);
            for (i, (dx, dy)) in [
                (-1i64, 0i64),
                (1, 0),
                (0, -1),
                (0, 1),
                (-1, -1),
                (1, 1),
                (-1, 1),
                (1, -1),
            ]
            .iter()
            .enumerate()
            {
                let nx = (x as i64 + dx).rem_euclid(dim as i64) as usize;
                let ny = (y as i64 + dy).rem_euclid(dim as i64) as usize;
                let ncell = ny * dim + nx;
                b.load(code(20, i as u64 % 4), grid_region + 4 * ncell as u64, 2);
                b.load(code(21, i as u64 % 4), gcost_region + 8 * ncell as u64, 1);
                decide = mix64(decide);
                if decide.is_multiple_of(4) && heap.len() < 64 {
                    push_heap(&mut heap, ncell as u32, &mut b, heap_region);
                }
            }
            expanded += 1;
            if expanded > 200 || b.done() {
                continue 'outer;
            }
        }
    }
    b.finish()
}

fn push_heap(heap: &mut Vec<u32>, v: u32, b: &mut TraceBuilder, heap_region: u64) {
    heap.push(v);
    let mut i = heap.len() - 1;
    while i > 0 {
        let p = (i - 1) / 2;
        b.load(code(28, 0), heap_region + 4 * p as u64, 1);
        if heap[p] > heap[i] {
            heap.swap(p, i);
            i = p;
        } else {
            break;
        }
    }
}

fn pop_heap(heap: &mut Vec<u32>, b: &mut TraceBuilder, heap_region: u64) -> Option<u32> {
    if heap.is_empty() {
        return None;
    }
    let top = heap.swap_remove(0);
    let mut i = 0;
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        if l >= heap.len() {
            break;
        }
        b.load(code(29, 0), heap_region + 4 * l as u64, 1);
        let mut m = l;
        if r < heap.len() {
            b.load(code(29, 1), heap_region + 4 * r as u64, 1);
            if heap[r] < heap[l] {
                m = r;
            }
        }
        if heap[m] < heap[i] {
            heap.swap(m, i);
            i = m;
        } else {
            break;
        }
    }
    Some(top)
}

/// SPEC `mcf`: network simplex. A large arc arena is traversed by
/// pointer chasing and keeps growing page-by-page, so a substantial
/// share of accesses (~20%, matching the paper's 21.6% compulsory-miss
/// figure for mcf) touches brand-new lines with a page delta of +1 —
/// the property the paper exploits with its delta vocabulary (10 deltas
/// cover 99% of mcf's compulsory misses). Table 2: 169 PCs and by far
/// the largest footprint.
pub(crate) fn mcf(cfg: &GeneratorConfig, rng: &mut impl Rng) -> Trace {
    let mut b = TraceBuilder::new("mcf", cfg.accesses);
    let arena = region(15);
    let tree_region = region(16);
    const ARC_BYTES: u64 = 64; // one arc per cache line
                               // Pre-existing network: large relative to the trace so footprint
                               // dominates Table 2 (mcf: 4.58M addresses vs ~0.2M for the rest).
    let mut arcs: u64 = (cfg.accesses as u64 / 3).max(4_096);
    let mut next: Vec<u32> = (0..arcs as u32).collect();
    // Random permutation -> long pointer chains.
    for i in (1..next.len()).rev() {
        next.swap(i, rng.gen_range(0..=i));
    }
    let mut cold = ColdCode::new(9, 150, 18);
    let mut cursor: u32 = 0;
    let mut iter = 0u64;
    'outer: while !b.done() {
        iter += 1;
        if iter.is_multiple_of(4) {
            cold.sweep(&mut b, 32);
        }
        // Phase 1: allocate a batch of new arcs (compulsory misses,
        // sequential lines/pages).
        for _ in 0..192 {
            b.load(code(32, 0), arena + arcs * ARC_BYTES, 2);
            next.push(rng.gen_range(0..arcs as u32 + 1));
            arcs += 1;
        }
        // Phase 2: pointer-chase the basis tree (irregular temporal
        // pattern: the same chains recur across simplex iterations).
        for _ in 0..5 {
            for _hop in 0..64 {
                b.load(
                    code(33, cursor as u64 % 2),
                    arena + cursor as u64 * ARC_BYTES,
                    3,
                );
                b.load(code(36, 0), tree_region + 8 * (cursor as u64 % 4096), 2);
                cursor = next[cursor as usize];
                if b.done() {
                    break 'outer;
                }
            }
            // Occasionally jump to a new chain head.
            cursor = rng.gen_range(0..next.len() as u32);
        }
        // Phase 3: a short strided price-update sweep.
        let start = rng.gen_range(0..arcs.saturating_sub(256));
        for i in 0..64 {
            b.load(code(37, i % 2), arena + (start + i) * ARC_BYTES, 1);
        }
    }
    b.finish()
}

/// SPEC `omnetpp`: discrete-event network simulation. The dominant
/// pattern is the binary-heap future-event set plus per-module state
/// touched by handler code; events live in a scattered allocation pool.
/// Table 2: 1101 PCs.
pub(crate) fn omnetpp(cfg: &GeneratorConfig, rng: &mut impl Rng) -> Trace {
    let mut b = TraceBuilder::new("omnetpp", cfg.accesses);
    let heap_region = region(18);
    let msg_region = region(19);
    let module_region = region(20);
    let n_modules = 2048u64;
    let mut cold = ColdCode::new(9, 170, 140);
    let mut heap: Vec<(u64, u64)> = Vec::new(); // (time, msg id)
    let mut now = 0u64;
    let mut next_msg = 0u64;
    for _ in 0..64 {
        heap.push((rng.gen_range(0..1000), next_msg));
        next_msg += 1;
    }
    heap.sort_unstable();
    let mut events = 0u64;
    while !b.done() {
        events += 1;
        if events.is_multiple_of(16) {
            cold.sweep(&mut b, 48);
        }
        // Pop earliest event: heap sift-down loads.
        heap.sort_unstable(); // simplified heap; loads modelled below
        let (t, msg) = heap.remove(0);
        now = now.max(t);
        let mut i = 0usize;
        while 2 * i + 1 < heap.len() && i < 6 {
            b.load(code(40, 0), heap_region + 16 * (2 * i + 1) as u64, 1);
            b.load(code(40, 1), heap_region + 16 * (2 * i + 2) as u64, 1);
            i = 2 * i + 1;
        }
        // Load the message struct: the pool is allocator-scattered, so
        // reuse is temporal, not spatial.
        let slot = mix64(msg % 16_384) % 16_384;
        let msg_addr = msg_region + slot * 128;
        b.load(code(41, 0), msg_addr, 2);
        b.load(code(41, 1), msg_addr + 64, 1);
        // Destination module state: hot handler loads from a few sites.
        let module = mix64(msg) % n_modules;
        for s in 0..3u64 {
            b.load(
                code(42 + module % 2, s),
                module_region + module * 256 + s * 64,
                2,
            );
        }
        // Handler schedules 1-2 future events.
        for _ in 0..rng.gen_range(1..=2) {
            heap.push((now + rng.gen_range(1..500), next_msg));
            b.load(code(44, 0), heap_region + 16 * heap.len() as u64, 1);
            next_msg += 1;
        }
    }
    b.finish()
}

/// SPEC `soplex`: simplex LP solver. Reproduces the Fig. 16 pattern:
/// `upd[leave]`, then a data-dependent branch picks one of two PCs that
/// both load `vec[leave]`, plus `ub`/`lb` — and adds the strided
/// sparse-matrix pricing sweeps that give soplex its spatial component.
/// Table 2: 2129 PCs (mostly cold pricing specialisations).
pub(crate) fn soplex(cfg: &GeneratorConfig, rng: &mut impl Rng) -> Trace {
    let mut b = TraceBuilder::new("soplex", cfg.accesses);
    let upd = region(22);
    let ubr = region(23);
    let lbr = region(24);
    let vec = region(25);
    let mat = region(26);
    let n = 60_000u64;
    let mut cold = ColdCode::new(9, 330, 260);
    // `leave` indices repeat across pivots with irregular order: keep a
    // working set that is permuted slowly.
    let mut working: Vec<u64> = (0..512).map(|_| rng.gen_range(0..n)).collect();
    let mut epoch = 0u64;
    while !b.done() {
        epoch += 1;
        if epoch.is_multiple_of(4) {
            cold.sweep(&mut b, 48);
        }
        // Pricing sweep: strided loads over matrix columns from a few
        // hot sites.
        let col = rng.gen_range(0..256u64);
        for i in 0..48u64 {
            b.load(code(60, i % 4), mat + col * 4096 + i * 64, 1);
            b.load(code(61, i % 4), mat + col * 4096 + i * 64 + 32, 2);
        }
        // Pivot loop: the Fig. 16 pattern over the working set.
        for k in 0..32 {
            let leave = working[(epoch as usize + k * 17) % working.len()];
            // line 123: x = upd[leave]
            b.load(code(50, 0), upd + 8 * leave, 2);
            let x = mix64(leave * 31 + epoch / 8) % 100;
            if x < 50 {
                // line 125: val = (ub[leave] - vec[leave]) / x
                b.load(code(50, 2), ubr + 8 * leave, 1);
                b.load(code(50, 3), vec + 8 * leave, 1);
            } else {
                // line 127: val = (lb[leave] - vec[leave]) / x
                b.load(code(51, 0), lbr + 8 * leave, 1);
                b.load(code(51, 1), vec + 8 * leave, 1);
            }
        }
        if epoch.is_multiple_of(8) {
            // Slow drift of the working set.
            for _ in 0..32 {
                let i = rng.gen_range(0..working.len());
                working[i] = rng.gen_range(0..n);
            }
        }
    }
    b.finish()
}

/// SPEC `sphinx3`: speech recognition. Streams over Gaussian mixture
/// parameters (long sequential runs) interleaved with irregular lexicon
/// / HMM-state lookups. Table 2: 1519 PCs, small footprint (4.3K pages).
pub(crate) fn sphinx(cfg: &GeneratorConfig, rng: &mut impl Rng) -> Trace {
    let mut b = TraceBuilder::new("sphinx", cfg.accesses);
    let gauss = region(28);
    let lexicon = region(29);
    let hmm = region(30);
    let senones = 1024u64;
    let words = Zipf::new(4_096, 1.1);
    let mut cold = ColdCode::new(9, 600, 180);
    let mut frame = 0u64;
    while !b.done() {
        frame += 1;
        if frame.is_multiple_of(4) {
            cold.sweep(&mut b, 48);
        }
        // Score a frame against a set of active senones: each senone's
        // mixture parameters are a short sequential run.
        let active = rng.gen_range(24..64u64);
        for s in 0..active {
            let senone = mix64(s * 977) % senones;
            for i in 0..8u64 {
                b.load(code(70, i % 4), gauss + senone * 512 + i * 64, 1);
            }
        }
        // Lexical tree transitions: irregular, word-popularity driven.
        for _ in 0..48 {
            let w = words.sample(rng) as u64;
            b.load(code(74, 0), lexicon + w * 96, 2);
            b.load(code(74, 1), hmm + (mix64(w) % 8_192) * 64, 3);
        }
    }
    b.finish()
}

/// SPEC `xalancbmk`: XSLT processing over a DOM tree. Repeated DFS
/// traversals over a pointer-linked tree; template dispatch gives the
/// benchmark its large cold-code footprint. Table 2: 2071 PCs.
pub(crate) fn xalancbmk(cfg: &GeneratorConfig, rng: &mut impl Rng) -> Trace {
    let mut b = TraceBuilder::new("xalancbmk", cfg.accesses);
    let nodes_region = region(33);
    let strings_region = region(34);
    let n_nodes = 20_000usize;
    // Random tree: parent pointers; children listed contiguously per
    // parent in allocation order (typical arena DOM layout).
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n_nodes];
    for v in 1..n_nodes {
        let p = rng.gen_range(0..v);
        children[p].push(v as u32);
    }
    let kinds: Vec<u8> = (0..n_nodes).map(|i| (mix64(i as u64) % 48) as u8).collect();
    // Templates revisit a recurring set of subtree roots. Early node
    // ids have the largest subtrees (the tree grows from node 0), so
    // roots are drawn from them — matching how stylesheets repeatedly
    // process the document's top-level sections.
    let roots: Vec<u32> = (0..12).map(|_| rng.gen_range(0..32) as u32).collect();
    let mut cold = ColdCode::new(9, 400, 250);
    let mut pass = 0usize;
    while !b.done() {
        pass += 1;
        if pass.is_multiple_of(2) {
            cold.sweep(&mut b, 48);
        }
        let mut stack = vec![roots[pass % roots.len()]];
        let mut steps = 0;
        while let Some(v) = stack.pop() {
            let v = v as usize;
            let kind = kinds[v] as u64;
            // Node header loads from a few hot dispatch sites.
            b.load(
                code(80 + kind % 2, kind % 4),
                nodes_region + v as u64 * 128,
                2,
            );
            b.load(code(82, kind % 4), nodes_region + v as u64 * 128 + 64, 1);
            // String-table lookup for the node's name.
            b.load(
                code(84, 0),
                strings_region + (mix64(v as u64) % 8_192) * 64,
                2,
            );
            for &c in children[v].iter().rev() {
                stack.push(c);
            }
            steps += 1;
            if steps > 400 || b.done() {
                break;
            }
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{SeedableRng, StdRng};
    use crate::stats::TraceStats;

    fn gen(f: fn(&GeneratorConfig, &mut StdRng) -> Trace) -> Trace {
        f(&GeneratorConfig::small(), &mut StdRng::seed_from_u64(7))
    }

    #[test]
    fn mcf_allocation_pages_arrive_with_plus_one_deltas() {
        let trace = gen(mcf);
        // Among accesses from the allocation PC, consecutive fresh pages
        // differ by +1 (sequential arena growth).
        let alloc_pc = code(32, 0);
        let alloc_pages: Vec<u64> = trace
            .iter()
            .filter(|a| a.pc == alloc_pc)
            .map(|a| a.page())
            .collect();
        assert!(
            alloc_pages.len() > 100,
            "too few allocations: {}",
            alloc_pages.len()
        );
        let mut plus_one = 0;
        let mut steps = 0;
        for w in alloc_pages.windows(2) {
            if w[1] != w[0] {
                steps += 1;
                if w[1] == w[0] + 1 {
                    plus_one += 1;
                }
            }
        }
        assert!(steps > 3, "allocation never crossed pages");
        assert_eq!(plus_one, steps, "arena growth must be page-sequential");
    }

    #[test]
    fn mcf_has_compulsory_heavy_mix() {
        let trace = gen(mcf);
        let mut seen = std::collections::HashSet::new();
        let fresh = trace.iter().filter(|a| seen.insert(a.line())).count();
        let frac = fresh as f64 / trace.len() as f64;
        // The paper reports ~21.6% compulsory misses for mcf; the trace
        // should be in that ballpark (first-touch fraction).
        assert!((0.1..0.6).contains(&frac), "first-touch fraction {frac}");
    }

    #[test]
    fn soplex_vec_is_loaded_by_two_pcs() {
        let trace = gen(soplex);
        let vec_region = region(25);
        let pcs: std::collections::HashSet<u64> = trace
            .iter()
            .filter(|a| a.addr >= vec_region && a.addr < vec_region + 0x1_0000_0000)
            .map(|a| a.pc)
            .collect();
        assert_eq!(
            pcs.len(),
            2,
            "vec[] must be loaded from exactly 2 PCs (Fig. 16)"
        );
    }

    #[test]
    fn astar_grid_loads_are_spatially_local() {
        let trace = gen(astar);
        let grid = region(11);
        let grid_lines: Vec<u64> = trace
            .iter()
            .filter(|a| a.addr >= grid && a.addr < grid + 0x1_0000_0000)
            .map(|a| a.line())
            .collect();
        assert!(grid_lines.len() > 500);
        let near = grid_lines
            .windows(2)
            .filter(|w| w[0].abs_diff(w[1]) <= 256)
            .count();
        assert!(
            near * 10 > grid_lines.len() * 7,
            "astar grid scan lost spatial locality: {near}/{}",
            grid_lines.len()
        );
    }

    #[test]
    fn astar_episodes_recur() {
        // Searches from a fixed pool of starts: the episode's first
        // expanded cell must repeat across the trace.
        let trace = gen(astar);
        let grid = region(11);
        let first_grid_addrs: Vec<u64> = trace
            .iter()
            .filter(|a| a.addr >= grid && a.addr < grid + 0x1_0000_0000)
            .map(|a| a.addr)
            .collect();
        let mut counts = std::collections::HashMap::new();
        for a in &first_grid_addrs {
            *counts.entry(*a).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap_or(0);
        assert!(max >= 3, "no recurring grid cells: max repeat {max}");
    }

    #[test]
    fn hot_loads_use_few_pcs_but_total_pc_counts_are_large() {
        // The omnetpp message-pool load must come from a single PC
        // (PC-localized stream), while the whole trace has hundreds of
        // PCs thanks to cold code.
        let trace = gen(omnetpp);
        let msg = region(19);
        let msg_pcs: std::collections::HashSet<u64> = trace
            .iter()
            .filter(|a| a.addr >= msg && a.addr < msg + 0x1_0000_0000)
            .map(|a| a.pc)
            .collect();
        assert!(
            msg_pcs.len() <= 2,
            "message loads fragmented over {} PCs",
            msg_pcs.len()
        );
        let s = TraceStats::of(&trace);
        assert!(
            s.unique_pcs > 300,
            "omnetpp should have many cold PCs: {}",
            s.unique_pcs
        );
    }

    #[test]
    fn pc_pools_produce_expected_diversity() {
        // Medium-scale traces; bounds bracket the Table 2 counts
        // loosely (cold-code pools fill in as traces lengthen).
        type Generate = fn(&GeneratorConfig, &mut StdRng) -> Trace;
        let cases: [(&str, Generate, usize, usize); 6] = [
            ("omnetpp", omnetpp, 400, 2_500),
            ("soplex", soplex, 600, 4_000),
            ("sphinx", sphinx, 400, 3_000),
            ("xalancbmk", xalancbmk, 700, 4_500),
            ("mcf", mcf, 10, 600),
            ("astar", astar, 50, 600),
        ];
        for (name, f, lo, hi) in cases {
            let t = f(&GeneratorConfig::medium(), &mut StdRng::seed_from_u64(7));
            let s = TraceStats::of(&t);
            assert!(
                (lo..hi).contains(&s.unique_pcs),
                "{name}: {} PCs not in {lo}..{hi}",
                s.unique_pcs
            );
        }
    }
}
