/root/repo/target/release/deps/mcf_delta-76853c3e7617fa7e.d: crates/bench/src/bin/mcf_delta.rs

/root/repo/target/release/deps/mcf_delta-76853c3e7617fa7e: crates/bench/src/bin/mcf_delta.rs

crates/bench/src/bin/mcf_delta.rs:
