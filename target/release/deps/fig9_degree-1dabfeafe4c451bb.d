/root/repo/target/release/deps/fig9_degree-1dabfeafe4c451bb.d: crates/bench/src/bin/fig9_degree.rs

/root/repo/target/release/deps/fig9_degree-1dabfeafe4c451bb: crates/bench/src/bin/fig9_degree.rs

crates/bench/src/bin/fig9_degree.rs:
