/root/repo/target/release/deps/voyager_sim-5166a5e9c4db1875.d: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs

/root/repo/target/release/deps/libvoyager_sim-5166a5e9c4db1875.rlib: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs

/root/repo/target/release/deps/libvoyager_sim-5166a5e9c4db1875.rmeta: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs

crates/sim/src/lib.rs:
crates/sim/src/cache.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/metrics.rs:
