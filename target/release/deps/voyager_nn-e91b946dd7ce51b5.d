/root/repo/target/release/deps/voyager_nn-e91b946dd7ce51b5.d: crates/nn/src/lib.rs crates/nn/src/compress.rs crates/nn/src/serialize.rs crates/nn/src/grads.rs crates/nn/src/hier_softmax.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs

/root/repo/target/release/deps/libvoyager_nn-e91b946dd7ce51b5.rlib: crates/nn/src/lib.rs crates/nn/src/compress.rs crates/nn/src/serialize.rs crates/nn/src/grads.rs crates/nn/src/hier_softmax.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs

/root/repo/target/release/deps/libvoyager_nn-e91b946dd7ce51b5.rmeta: crates/nn/src/lib.rs crates/nn/src/compress.rs crates/nn/src/serialize.rs crates/nn/src/grads.rs crates/nn/src/hier_softmax.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs

crates/nn/src/lib.rs:
crates/nn/src/compress.rs:
crates/nn/src/serialize.rs:
crates/nn/src/grads.rs:
crates/nn/src/hier_softmax.rs:
crates/nn/src/layers.rs:
crates/nn/src/optim.rs:
crates/nn/src/params.rs:
