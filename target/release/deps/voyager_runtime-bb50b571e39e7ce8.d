/root/repo/target/release/deps/voyager_runtime-bb50b571e39e7ce8.d: crates/runtime/src/lib.rs crates/runtime/src/checkpoint.rs crates/runtime/src/microbatch.rs crates/runtime/src/serve.rs crates/runtime/src/trainer.rs

/root/repo/target/release/deps/libvoyager_runtime-bb50b571e39e7ce8.rlib: crates/runtime/src/lib.rs crates/runtime/src/checkpoint.rs crates/runtime/src/microbatch.rs crates/runtime/src/serve.rs crates/runtime/src/trainer.rs

/root/repo/target/release/deps/libvoyager_runtime-bb50b571e39e7ce8.rmeta: crates/runtime/src/lib.rs crates/runtime/src/checkpoint.rs crates/runtime/src/microbatch.rs crates/runtime/src/serve.rs crates/runtime/src/trainer.rs

crates/runtime/src/lib.rs:
crates/runtime/src/checkpoint.rs:
crates/runtime/src/microbatch.rs:
crates/runtime/src/serve.rs:
crates/runtime/src/trainer.rs:
