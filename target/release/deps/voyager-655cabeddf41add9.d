/root/repo/target/release/deps/voyager-655cabeddf41add9.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/data.rs crates/core/src/delta_lstm.rs crates/core/src/model.rs crates/core/src/online.rs crates/core/src/replay.rs

/root/repo/target/release/deps/libvoyager-655cabeddf41add9.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/data.rs crates/core/src/delta_lstm.rs crates/core/src/model.rs crates/core/src/online.rs crates/core/src/replay.rs

/root/repo/target/release/deps/libvoyager-655cabeddf41add9.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/data.rs crates/core/src/delta_lstm.rs crates/core/src/model.rs crates/core/src/online.rs crates/core/src/replay.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/data.rs:
crates/core/src/delta_lstm.rs:
crates/core/src/model.rs:
crates/core/src/online.rs:
crates/core/src/replay.rs:
