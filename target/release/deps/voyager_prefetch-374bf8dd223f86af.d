/root/repo/target/release/deps/voyager_prefetch-374bf8dd223f86af.d: crates/prefetch/src/lib.rs crates/prefetch/src/bo.rs crates/prefetch/src/domino.rs crates/prefetch/src/hybrid.rs crates/prefetch/src/isb.rs crates/prefetch/src/isb_structural.rs crates/prefetch/src/markov.rs crates/prefetch/src/nextline.rs crates/prefetch/src/sms.rs crates/prefetch/src/stms.rs crates/prefetch/src/stride.rs crates/prefetch/src/throttle.rs crates/prefetch/src/vldp.rs

/root/repo/target/release/deps/libvoyager_prefetch-374bf8dd223f86af.rlib: crates/prefetch/src/lib.rs crates/prefetch/src/bo.rs crates/prefetch/src/domino.rs crates/prefetch/src/hybrid.rs crates/prefetch/src/isb.rs crates/prefetch/src/isb_structural.rs crates/prefetch/src/markov.rs crates/prefetch/src/nextline.rs crates/prefetch/src/sms.rs crates/prefetch/src/stms.rs crates/prefetch/src/stride.rs crates/prefetch/src/throttle.rs crates/prefetch/src/vldp.rs

/root/repo/target/release/deps/libvoyager_prefetch-374bf8dd223f86af.rmeta: crates/prefetch/src/lib.rs crates/prefetch/src/bo.rs crates/prefetch/src/domino.rs crates/prefetch/src/hybrid.rs crates/prefetch/src/isb.rs crates/prefetch/src/isb_structural.rs crates/prefetch/src/markov.rs crates/prefetch/src/nextline.rs crates/prefetch/src/sms.rs crates/prefetch/src/stms.rs crates/prefetch/src/stride.rs crates/prefetch/src/throttle.rs crates/prefetch/src/vldp.rs

crates/prefetch/src/lib.rs:
crates/prefetch/src/bo.rs:
crates/prefetch/src/domino.rs:
crates/prefetch/src/hybrid.rs:
crates/prefetch/src/isb.rs:
crates/prefetch/src/isb_structural.rs:
crates/prefetch/src/markov.rs:
crates/prefetch/src/nextline.rs:
crates/prefetch/src/sms.rs:
crates/prefetch/src/stms.rs:
crates/prefetch/src/stride.rs:
crates/prefetch/src/throttle.rs:
crates/prefetch/src/vldp.rs:
