/root/repo/target/release/deps/fig15_labels-afb253a5aad36121.d: crates/bench/src/bin/fig15_labels.rs

/root/repo/target/release/deps/fig15_labels-afb253a5aad36121: crates/bench/src/bin/fig15_labels.rs

crates/bench/src/bin/fig15_labels.rs:
