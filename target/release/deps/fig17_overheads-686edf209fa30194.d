/root/repo/target/release/deps/fig17_overheads-686edf209fa30194.d: crates/bench/src/bin/fig17_overheads.rs

/root/repo/target/release/deps/fig17_overheads-686edf209fa30194: crates/bench/src/bin/fig17_overheads.rs

crates/bench/src/bin/fig17_overheads.rs:
