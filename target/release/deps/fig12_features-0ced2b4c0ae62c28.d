/root/repo/target/release/deps/fig12_features-0ced2b4c0ae62c28.d: crates/bench/src/bin/fig12_features.rs

/root/repo/target/release/deps/fig12_features-0ced2b4c0ae62c28: crates/bench/src/bin/fig12_features.rs

crates/bench/src/bin/fig12_features.rs:
