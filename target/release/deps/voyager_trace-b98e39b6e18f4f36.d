/root/repo/target/release/deps/voyager_trace-b98e39b6e18f4f36.d: crates/trace/src/lib.rs crates/trace/src/access.rs crates/trace/src/gen/mod.rs crates/trace/src/gen/graph.rs crates/trace/src/gen/oltp.rs crates/trace/src/gen/spec.rs crates/trace/src/labels.rs crates/trace/src/serialize.rs crates/trace/src/simpoint.rs crates/trace/src/stats.rs crates/trace/src/vocab.rs

/root/repo/target/release/deps/libvoyager_trace-b98e39b6e18f4f36.rlib: crates/trace/src/lib.rs crates/trace/src/access.rs crates/trace/src/gen/mod.rs crates/trace/src/gen/graph.rs crates/trace/src/gen/oltp.rs crates/trace/src/gen/spec.rs crates/trace/src/labels.rs crates/trace/src/serialize.rs crates/trace/src/simpoint.rs crates/trace/src/stats.rs crates/trace/src/vocab.rs

/root/repo/target/release/deps/libvoyager_trace-b98e39b6e18f4f36.rmeta: crates/trace/src/lib.rs crates/trace/src/access.rs crates/trace/src/gen/mod.rs crates/trace/src/gen/graph.rs crates/trace/src/gen/oltp.rs crates/trace/src/gen/spec.rs crates/trace/src/labels.rs crates/trace/src/serialize.rs crates/trace/src/simpoint.rs crates/trace/src/stats.rs crates/trace/src/vocab.rs

crates/trace/src/lib.rs:
crates/trace/src/access.rs:
crates/trace/src/gen/mod.rs:
crates/trace/src/gen/graph.rs:
crates/trace/src/gen/oltp.rs:
crates/trace/src/gen/spec.rs:
crates/trace/src/labels.rs:
crates/trace/src/serialize.rs:
crates/trace/src/simpoint.rs:
crates/trace/src/stats.rs:
crates/trace/src/vocab.rs:
