/root/repo/target/release/deps/voyagerctl-5bffdecd6bf0864d.d: crates/bench/src/bin/voyagerctl.rs

/root/repo/target/release/deps/voyagerctl-5bffdecd6bf0864d: crates/bench/src/bin/voyagerctl.rs

crates/bench/src/bin/voyagerctl.rs:
