/root/repo/target/release/deps/fig5_6_8_sim-19100e9c2ebaa800.d: crates/bench/src/bin/fig5_6_8_sim.rs

/root/repo/target/release/deps/fig5_6_8_sim-19100e9c2ebaa800: crates/bench/src/bin/fig5_6_8_sim.rs

crates/bench/src/bin/fig5_6_8_sim.rs:
