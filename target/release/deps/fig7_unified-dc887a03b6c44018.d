/root/repo/target/release/deps/fig7_unified-dc887a03b6c44018.d: crates/bench/src/bin/fig7_unified.rs

/root/repo/target/release/deps/fig7_unified-dc887a03b6c44018: crates/bench/src/bin/fig7_unified.rs

crates/bench/src/bin/fig7_unified.rs:
