/root/repo/target/release/deps/voyager_bench-400de42e5289ad43.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libvoyager_bench-400de42e5289ad43.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libvoyager_bench-400de42e5289ad43.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
