/root/repo/target/release/deps/table2-4263ddc94675c442.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-4263ddc94675c442: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
