/root/repo/target/release/deps/fig10_11_breakdown-ec8b740517f6b243.d: crates/bench/src/bin/fig10_11_breakdown.rs

/root/repo/target/release/deps/fig10_11_breakdown-ec8b740517f6b243: crates/bench/src/bin/fig10_11_breakdown.rs

crates/bench/src/bin/fig10_11_breakdown.rs:
