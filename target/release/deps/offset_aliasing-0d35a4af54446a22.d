/root/repo/target/release/deps/offset_aliasing-0d35a4af54446a22.d: crates/bench/src/bin/offset_aliasing.rs

/root/repo/target/release/deps/offset_aliasing-0d35a4af54446a22: crates/bench/src/bin/offset_aliasing.rs

crates/bench/src/bin/offset_aliasing.rs:
