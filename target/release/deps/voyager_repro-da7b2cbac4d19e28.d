/root/repo/target/release/deps/voyager_repro-da7b2cbac4d19e28.d: src/lib.rs

/root/repo/target/release/deps/libvoyager_repro-da7b2cbac4d19e28.rlib: src/lib.rs

/root/repo/target/release/deps/libvoyager_repro-da7b2cbac4d19e28.rmeta: src/lib.rs

src/lib.rs:
