/root/repo/target/release/deps/voyager_tensor-c28421409c4939d5.d: crates/tensor/src/lib.rs crates/tensor/src/tape.rs crates/tensor/src/tensor.rs crates/tensor/src/gradcheck.rs crates/tensor/src/rng.rs

/root/repo/target/release/deps/libvoyager_tensor-c28421409c4939d5.rlib: crates/tensor/src/lib.rs crates/tensor/src/tape.rs crates/tensor/src/tensor.rs crates/tensor/src/gradcheck.rs crates/tensor/src/rng.rs

/root/repo/target/release/deps/libvoyager_tensor-c28421409c4939d5.rmeta: crates/tensor/src/lib.rs crates/tensor/src/tape.rs crates/tensor/src/tensor.rs crates/tensor/src/gradcheck.rs crates/tensor/src/rng.rs

crates/tensor/src/lib.rs:
crates/tensor/src/tape.rs:
crates/tensor/src/tensor.rs:
crates/tensor/src/gradcheck.rs:
crates/tensor/src/rng.rs:
