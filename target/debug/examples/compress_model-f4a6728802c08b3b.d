/root/repo/target/debug/examples/compress_model-f4a6728802c08b3b.d: examples/compress_model.rs

/root/repo/target/debug/examples/compress_model-f4a6728802c08b3b: examples/compress_model.rs

examples/compress_model.rs:
