/root/repo/target/debug/examples/labeling_schemes-be801dba51ef40fc.d: examples/labeling_schemes.rs Cargo.toml

/root/repo/target/debug/examples/liblabeling_schemes-be801dba51ef40fc.rmeta: examples/labeling_schemes.rs Cargo.toml

examples/labeling_schemes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
