/root/repo/target/debug/examples/graph_prefetch-07e4addf8a5ab7bf.d: examples/graph_prefetch.rs Cargo.toml

/root/repo/target/debug/examples/libgraph_prefetch-07e4addf8a5ab7bf.rmeta: examples/graph_prefetch.rs Cargo.toml

examples/graph_prefetch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
