/root/repo/target/debug/examples/profile_deploy-693b07df475e91e0.d: examples/profile_deploy.rs Cargo.toml

/root/repo/target/debug/examples/libprofile_deploy-693b07df475e91e0.rmeta: examples/profile_deploy.rs Cargo.toml

examples/profile_deploy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
