/root/repo/target/debug/examples/graph_prefetch-9665a988206c88d5.d: examples/graph_prefetch.rs

/root/repo/target/debug/examples/graph_prefetch-9665a988206c88d5: examples/graph_prefetch.rs

examples/graph_prefetch.rs:
