/root/repo/target/debug/examples/design_space-3b9143f4ef40fdb8.d: examples/design_space.rs

/root/repo/target/debug/examples/design_space-3b9143f4ef40fdb8: examples/design_space.rs

examples/design_space.rs:
