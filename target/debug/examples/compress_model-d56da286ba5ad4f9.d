/root/repo/target/debug/examples/compress_model-d56da286ba5ad4f9.d: examples/compress_model.rs Cargo.toml

/root/repo/target/debug/examples/libcompress_model-d56da286ba5ad4f9.rmeta: examples/compress_model.rs Cargo.toml

examples/compress_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
