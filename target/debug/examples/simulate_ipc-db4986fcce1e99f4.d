/root/repo/target/debug/examples/simulate_ipc-db4986fcce1e99f4.d: examples/simulate_ipc.rs Cargo.toml

/root/repo/target/debug/examples/libsimulate_ipc-db4986fcce1e99f4.rmeta: examples/simulate_ipc.rs Cargo.toml

examples/simulate_ipc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
