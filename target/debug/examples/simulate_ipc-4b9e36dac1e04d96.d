/root/repo/target/debug/examples/simulate_ipc-4b9e36dac1e04d96.d: examples/simulate_ipc.rs

/root/repo/target/debug/examples/simulate_ipc-4b9e36dac1e04d96: examples/simulate_ipc.rs

examples/simulate_ipc.rs:
