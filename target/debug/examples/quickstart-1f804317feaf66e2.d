/root/repo/target/debug/examples/quickstart-1f804317feaf66e2.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-1f804317feaf66e2: examples/quickstart.rs

examples/quickstart.rs:
