/root/repo/target/debug/examples/profile_deploy-e8f287b8c4d3582e.d: examples/profile_deploy.rs

/root/repo/target/debug/examples/profile_deploy-e8f287b8c4d3582e: examples/profile_deploy.rs

examples/profile_deploy.rs:
