/root/repo/target/debug/examples/labeling_schemes-a3a6e0efab0fc005.d: examples/labeling_schemes.rs

/root/repo/target/debug/examples/labeling_schemes-a3a6e0efab0fc005: examples/labeling_schemes.rs

examples/labeling_schemes.rs:
