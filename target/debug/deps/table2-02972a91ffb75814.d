/root/repo/target/debug/deps/table2-02972a91ffb75814.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-02972a91ffb75814: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
