/root/repo/target/debug/deps/fig5_6_8_sim-7de1d00f291212db.d: crates/bench/src/bin/fig5_6_8_sim.rs

/root/repo/target/debug/deps/fig5_6_8_sim-7de1d00f291212db: crates/bench/src/bin/fig5_6_8_sim.rs

crates/bench/src/bin/fig5_6_8_sim.rs:
