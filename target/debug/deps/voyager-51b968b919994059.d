/root/repo/target/debug/deps/voyager-51b968b919994059.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/data.rs crates/core/src/delta_lstm.rs crates/core/src/model.rs crates/core/src/online.rs crates/core/src/replay.rs Cargo.toml

/root/repo/target/debug/deps/libvoyager-51b968b919994059.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/data.rs crates/core/src/delta_lstm.rs crates/core/src/model.rs crates/core/src/online.rs crates/core/src/replay.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/data.rs:
crates/core/src/delta_lstm.rs:
crates/core/src/model.rs:
crates/core/src/online.rs:
crates/core/src/replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
