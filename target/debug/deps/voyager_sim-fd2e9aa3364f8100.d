/root/repo/target/debug/deps/voyager_sim-fd2e9aa3364f8100.d: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs

/root/repo/target/debug/deps/libvoyager_sim-fd2e9aa3364f8100.rlib: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs

/root/repo/target/debug/deps/libvoyager_sim-fd2e9aa3364f8100.rmeta: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs

crates/sim/src/lib.rs:
crates/sim/src/cache.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/metrics.rs:
