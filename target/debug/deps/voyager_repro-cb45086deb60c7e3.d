/root/repo/target/debug/deps/voyager_repro-cb45086deb60c7e3.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libvoyager_repro-cb45086deb60c7e3.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
