/root/repo/target/debug/deps/voyager_sim-10ed2d3c50bb51cb.d: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs

/root/repo/target/debug/deps/voyager_sim-10ed2d3c50bb51cb: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs

crates/sim/src/lib.rs:
crates/sim/src/cache.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/metrics.rs:
