/root/repo/target/debug/deps/voyager_prefetch-3fc987e8093cb83b.d: crates/prefetch/src/lib.rs crates/prefetch/src/bo.rs crates/prefetch/src/domino.rs crates/prefetch/src/hybrid.rs crates/prefetch/src/isb.rs crates/prefetch/src/isb_structural.rs crates/prefetch/src/markov.rs crates/prefetch/src/nextline.rs crates/prefetch/src/sms.rs crates/prefetch/src/stms.rs crates/prefetch/src/stride.rs crates/prefetch/src/throttle.rs crates/prefetch/src/vldp.rs

/root/repo/target/debug/deps/libvoyager_prefetch-3fc987e8093cb83b.rlib: crates/prefetch/src/lib.rs crates/prefetch/src/bo.rs crates/prefetch/src/domino.rs crates/prefetch/src/hybrid.rs crates/prefetch/src/isb.rs crates/prefetch/src/isb_structural.rs crates/prefetch/src/markov.rs crates/prefetch/src/nextline.rs crates/prefetch/src/sms.rs crates/prefetch/src/stms.rs crates/prefetch/src/stride.rs crates/prefetch/src/throttle.rs crates/prefetch/src/vldp.rs

/root/repo/target/debug/deps/libvoyager_prefetch-3fc987e8093cb83b.rmeta: crates/prefetch/src/lib.rs crates/prefetch/src/bo.rs crates/prefetch/src/domino.rs crates/prefetch/src/hybrid.rs crates/prefetch/src/isb.rs crates/prefetch/src/isb_structural.rs crates/prefetch/src/markov.rs crates/prefetch/src/nextline.rs crates/prefetch/src/sms.rs crates/prefetch/src/stms.rs crates/prefetch/src/stride.rs crates/prefetch/src/throttle.rs crates/prefetch/src/vldp.rs

crates/prefetch/src/lib.rs:
crates/prefetch/src/bo.rs:
crates/prefetch/src/domino.rs:
crates/prefetch/src/hybrid.rs:
crates/prefetch/src/isb.rs:
crates/prefetch/src/isb_structural.rs:
crates/prefetch/src/markov.rs:
crates/prefetch/src/nextline.rs:
crates/prefetch/src/sms.rs:
crates/prefetch/src/stms.rs:
crates/prefetch/src/stride.rs:
crates/prefetch/src/throttle.rs:
crates/prefetch/src/vldp.rs:
