/root/repo/target/debug/deps/voyager_bench-96cf2102667cfa78.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libvoyager_bench-96cf2102667cfa78.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
