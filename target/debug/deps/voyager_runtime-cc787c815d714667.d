/root/repo/target/debug/deps/voyager_runtime-cc787c815d714667.d: crates/runtime/src/lib.rs crates/runtime/src/checkpoint.rs crates/runtime/src/microbatch.rs crates/runtime/src/serve.rs crates/runtime/src/trainer.rs

/root/repo/target/debug/deps/voyager_runtime-cc787c815d714667: crates/runtime/src/lib.rs crates/runtime/src/checkpoint.rs crates/runtime/src/microbatch.rs crates/runtime/src/serve.rs crates/runtime/src/trainer.rs

crates/runtime/src/lib.rs:
crates/runtime/src/checkpoint.rs:
crates/runtime/src/microbatch.rs:
crates/runtime/src/serve.rs:
crates/runtime/src/trainer.rs:
