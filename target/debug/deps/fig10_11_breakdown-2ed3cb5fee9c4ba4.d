/root/repo/target/debug/deps/fig10_11_breakdown-2ed3cb5fee9c4ba4.d: crates/bench/src/bin/fig10_11_breakdown.rs

/root/repo/target/debug/deps/fig10_11_breakdown-2ed3cb5fee9c4ba4: crates/bench/src/bin/fig10_11_breakdown.rs

crates/bench/src/bin/fig10_11_breakdown.rs:
