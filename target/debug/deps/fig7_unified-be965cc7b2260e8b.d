/root/repo/target/debug/deps/fig7_unified-be965cc7b2260e8b.d: crates/bench/src/bin/fig7_unified.rs

/root/repo/target/debug/deps/fig7_unified-be965cc7b2260e8b: crates/bench/src/bin/fig7_unified.rs

crates/bench/src/bin/fig7_unified.rs:
