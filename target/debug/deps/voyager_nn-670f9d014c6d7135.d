/root/repo/target/debug/deps/voyager_nn-670f9d014c6d7135.d: crates/nn/src/lib.rs crates/nn/src/compress.rs crates/nn/src/serialize.rs crates/nn/src/grads.rs crates/nn/src/hier_softmax.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs

/root/repo/target/debug/deps/voyager_nn-670f9d014c6d7135: crates/nn/src/lib.rs crates/nn/src/compress.rs crates/nn/src/serialize.rs crates/nn/src/grads.rs crates/nn/src/hier_softmax.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs

crates/nn/src/lib.rs:
crates/nn/src/compress.rs:
crates/nn/src/serialize.rs:
crates/nn/src/grads.rs:
crates/nn/src/hier_softmax.rs:
crates/nn/src/layers.rs:
crates/nn/src/optim.rs:
crates/nn/src/params.rs:
