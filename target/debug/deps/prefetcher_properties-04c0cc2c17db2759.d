/root/repo/target/debug/deps/prefetcher_properties-04c0cc2c17db2759.d: tests/prefetcher_properties.rs

/root/repo/target/debug/deps/prefetcher_properties-04c0cc2c17db2759: tests/prefetcher_properties.rs

tests/prefetcher_properties.rs:
