/root/repo/target/debug/deps/voyager_nn-d40399249ea835cc.d: crates/nn/src/lib.rs crates/nn/src/compress.rs crates/nn/src/serialize.rs crates/nn/src/grads.rs crates/nn/src/hier_softmax.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs

/root/repo/target/debug/deps/libvoyager_nn-d40399249ea835cc.rlib: crates/nn/src/lib.rs crates/nn/src/compress.rs crates/nn/src/serialize.rs crates/nn/src/grads.rs crates/nn/src/hier_softmax.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs

/root/repo/target/debug/deps/libvoyager_nn-d40399249ea835cc.rmeta: crates/nn/src/lib.rs crates/nn/src/compress.rs crates/nn/src/serialize.rs crates/nn/src/grads.rs crates/nn/src/hier_softmax.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs

crates/nn/src/lib.rs:
crates/nn/src/compress.rs:
crates/nn/src/serialize.rs:
crates/nn/src/grads.rs:
crates/nn/src/hier_softmax.rs:
crates/nn/src/layers.rs:
crates/nn/src/optim.rs:
crates/nn/src/params.rs:
