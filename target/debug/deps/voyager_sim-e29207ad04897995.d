/root/repo/target/debug/deps/voyager_sim-e29207ad04897995.d: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs Cargo.toml

/root/repo/target/debug/deps/libvoyager_sim-e29207ad04897995.rmeta: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/cache.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/metrics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
