/root/repo/target/debug/deps/fig9_degree-23b4f4fe302449e3.d: crates/bench/src/bin/fig9_degree.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_degree-23b4f4fe302449e3.rmeta: crates/bench/src/bin/fig9_degree.rs Cargo.toml

crates/bench/src/bin/fig9_degree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
