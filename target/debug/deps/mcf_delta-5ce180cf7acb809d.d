/root/repo/target/debug/deps/mcf_delta-5ce180cf7acb809d.d: crates/bench/src/bin/mcf_delta.rs Cargo.toml

/root/repo/target/debug/deps/libmcf_delta-5ce180cf7acb809d.rmeta: crates/bench/src/bin/mcf_delta.rs Cargo.toml

crates/bench/src/bin/mcf_delta.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
