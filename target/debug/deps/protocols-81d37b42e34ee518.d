/root/repo/target/debug/deps/protocols-81d37b42e34ee518.d: crates/core/tests/protocols.rs

/root/repo/target/debug/deps/protocols-81d37b42e34ee518: crates/core/tests/protocols.rs

crates/core/tests/protocols.rs:
