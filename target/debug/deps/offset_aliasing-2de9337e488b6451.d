/root/repo/target/debug/deps/offset_aliasing-2de9337e488b6451.d: crates/bench/src/bin/offset_aliasing.rs

/root/repo/target/debug/deps/offset_aliasing-2de9337e488b6451: crates/bench/src/bin/offset_aliasing.rs

crates/bench/src/bin/offset_aliasing.rs:
