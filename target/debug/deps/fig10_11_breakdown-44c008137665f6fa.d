/root/repo/target/debug/deps/fig10_11_breakdown-44c008137665f6fa.d: crates/bench/src/bin/fig10_11_breakdown.rs

/root/repo/target/debug/deps/fig10_11_breakdown-44c008137665f6fa: crates/bench/src/bin/fig10_11_breakdown.rs

crates/bench/src/bin/fig10_11_breakdown.rs:
