/root/repo/target/debug/deps/fig10_11_breakdown-2ce6fdab31c3990e.d: crates/bench/src/bin/fig10_11_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_11_breakdown-2ce6fdab31c3990e.rmeta: crates/bench/src/bin/fig10_11_breakdown.rs Cargo.toml

crates/bench/src/bin/fig10_11_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
