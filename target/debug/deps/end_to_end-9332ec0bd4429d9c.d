/root/repo/target/debug/deps/end_to_end-9332ec0bd4429d9c.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-9332ec0bd4429d9c: tests/end_to_end.rs

tests/end_to_end.rs:
