/root/repo/target/debug/deps/determinism-bfce97d78546d1c4.d: crates/runtime/tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-bfce97d78546d1c4.rmeta: crates/runtime/tests/determinism.rs Cargo.toml

crates/runtime/tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
