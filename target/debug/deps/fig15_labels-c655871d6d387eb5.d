/root/repo/target/debug/deps/fig15_labels-c655871d6d387eb5.d: crates/bench/src/bin/fig15_labels.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_labels-c655871d6d387eb5.rmeta: crates/bench/src/bin/fig15_labels.rs Cargo.toml

crates/bench/src/bin/fig15_labels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
