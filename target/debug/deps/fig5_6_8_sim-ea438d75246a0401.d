/root/repo/target/debug/deps/fig5_6_8_sim-ea438d75246a0401.d: crates/bench/src/bin/fig5_6_8_sim.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_6_8_sim-ea438d75246a0401.rmeta: crates/bench/src/bin/fig5_6_8_sim.rs Cargo.toml

crates/bench/src/bin/fig5_6_8_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
