/root/repo/target/debug/deps/voyager_repro-8cfd5e80303bdaa0.d: src/lib.rs

/root/repo/target/debug/deps/libvoyager_repro-8cfd5e80303bdaa0.rlib: src/lib.rs

/root/repo/target/debug/deps/libvoyager_repro-8cfd5e80303bdaa0.rmeta: src/lib.rs

src/lib.rs:
