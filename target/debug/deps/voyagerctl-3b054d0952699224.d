/root/repo/target/debug/deps/voyagerctl-3b054d0952699224.d: crates/bench/src/bin/voyagerctl.rs

/root/repo/target/debug/deps/voyagerctl-3b054d0952699224: crates/bench/src/bin/voyagerctl.rs

crates/bench/src/bin/voyagerctl.rs:
