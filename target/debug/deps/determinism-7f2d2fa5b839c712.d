/root/repo/target/debug/deps/determinism-7f2d2fa5b839c712.d: crates/runtime/tests/determinism.rs

/root/repo/target/debug/deps/determinism-7f2d2fa5b839c712: crates/runtime/tests/determinism.rs

crates/runtime/tests/determinism.rs:
