/root/repo/target/debug/deps/voyager_bench-5e069c935e869d23.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libvoyager_bench-5e069c935e869d23.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
