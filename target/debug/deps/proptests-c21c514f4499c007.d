/root/repo/target/debug/deps/proptests-c21c514f4499c007.d: crates/trace/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-c21c514f4499c007.rmeta: crates/trace/tests/proptests.rs Cargo.toml

crates/trace/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
