/root/repo/target/debug/deps/paper_claims-33f23f42568bc414.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-33f23f42568bc414: tests/paper_claims.rs

tests/paper_claims.rs:
