/root/repo/target/debug/deps/fig12_features-c44bc250e52b321e.d: crates/bench/src/bin/fig12_features.rs

/root/repo/target/debug/deps/fig12_features-c44bc250e52b321e: crates/bench/src/bin/fig12_features.rs

crates/bench/src/bin/fig12_features.rs:
