/root/repo/target/debug/deps/voyager_trace-4f14b4941b346efe.d: crates/trace/src/lib.rs crates/trace/src/access.rs crates/trace/src/gen/mod.rs crates/trace/src/gen/graph.rs crates/trace/src/gen/oltp.rs crates/trace/src/gen/spec.rs crates/trace/src/labels.rs crates/trace/src/serialize.rs crates/trace/src/simpoint.rs crates/trace/src/stats.rs crates/trace/src/vocab.rs

/root/repo/target/debug/deps/voyager_trace-4f14b4941b346efe: crates/trace/src/lib.rs crates/trace/src/access.rs crates/trace/src/gen/mod.rs crates/trace/src/gen/graph.rs crates/trace/src/gen/oltp.rs crates/trace/src/gen/spec.rs crates/trace/src/labels.rs crates/trace/src/serialize.rs crates/trace/src/simpoint.rs crates/trace/src/stats.rs crates/trace/src/vocab.rs

crates/trace/src/lib.rs:
crates/trace/src/access.rs:
crates/trace/src/gen/mod.rs:
crates/trace/src/gen/graph.rs:
crates/trace/src/gen/oltp.rs:
crates/trace/src/gen/spec.rs:
crates/trace/src/labels.rs:
crates/trace/src/serialize.rs:
crates/trace/src/simpoint.rs:
crates/trace/src/stats.rs:
crates/trace/src/vocab.rs:
