/root/repo/target/debug/deps/voyager_tensor-3ea807d0904b7f21.d: crates/tensor/src/lib.rs crates/tensor/src/tape.rs crates/tensor/src/tensor.rs crates/tensor/src/gradcheck.rs crates/tensor/src/rng.rs Cargo.toml

/root/repo/target/debug/deps/libvoyager_tensor-3ea807d0904b7f21.rmeta: crates/tensor/src/lib.rs crates/tensor/src/tape.rs crates/tensor/src/tensor.rs crates/tensor/src/gradcheck.rs crates/tensor/src/rng.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/tape.rs:
crates/tensor/src/tensor.rs:
crates/tensor/src/gradcheck.rs:
crates/tensor/src/rng.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
