/root/repo/target/debug/deps/prefetcher_properties-312cd5fb48207444.d: tests/prefetcher_properties.rs Cargo.toml

/root/repo/target/debug/deps/libprefetcher_properties-312cd5fb48207444.rmeta: tests/prefetcher_properties.rs Cargo.toml

tests/prefetcher_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
