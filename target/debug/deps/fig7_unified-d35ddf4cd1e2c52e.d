/root/repo/target/debug/deps/fig7_unified-d35ddf4cd1e2c52e.d: crates/bench/src/bin/fig7_unified.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_unified-d35ddf4cd1e2c52e.rmeta: crates/bench/src/bin/fig7_unified.rs Cargo.toml

crates/bench/src/bin/fig7_unified.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
