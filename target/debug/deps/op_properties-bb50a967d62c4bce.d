/root/repo/target/debug/deps/op_properties-bb50a967d62c4bce.d: crates/tensor/tests/op_properties.rs

/root/repo/target/debug/deps/op_properties-bb50a967d62c4bce: crates/tensor/tests/op_properties.rs

crates/tensor/tests/op_properties.rs:
