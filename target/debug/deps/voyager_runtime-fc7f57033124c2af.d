/root/repo/target/debug/deps/voyager_runtime-fc7f57033124c2af.d: crates/runtime/src/lib.rs crates/runtime/src/checkpoint.rs crates/runtime/src/microbatch.rs crates/runtime/src/serve.rs crates/runtime/src/trainer.rs Cargo.toml

/root/repo/target/debug/deps/libvoyager_runtime-fc7f57033124c2af.rmeta: crates/runtime/src/lib.rs crates/runtime/src/checkpoint.rs crates/runtime/src/microbatch.rs crates/runtime/src/serve.rs crates/runtime/src/trainer.rs Cargo.toml

crates/runtime/src/lib.rs:
crates/runtime/src/checkpoint.rs:
crates/runtime/src/microbatch.rs:
crates/runtime/src/serve.rs:
crates/runtime/src/trainer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
