/root/repo/target/debug/deps/voyager_runtime-d0fab9b416cb7d89.d: crates/runtime/src/lib.rs crates/runtime/src/checkpoint.rs crates/runtime/src/microbatch.rs crates/runtime/src/serve.rs crates/runtime/src/trainer.rs Cargo.toml

/root/repo/target/debug/deps/libvoyager_runtime-d0fab9b416cb7d89.rmeta: crates/runtime/src/lib.rs crates/runtime/src/checkpoint.rs crates/runtime/src/microbatch.rs crates/runtime/src/serve.rs crates/runtime/src/trainer.rs Cargo.toml

crates/runtime/src/lib.rs:
crates/runtime/src/checkpoint.rs:
crates/runtime/src/microbatch.rs:
crates/runtime/src/serve.rs:
crates/runtime/src/trainer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
