/root/repo/target/debug/deps/mcf_delta-e1803ba6cc7fb513.d: crates/bench/src/bin/mcf_delta.rs

/root/repo/target/debug/deps/mcf_delta-e1803ba6cc7fb513: crates/bench/src/bin/mcf_delta.rs

crates/bench/src/bin/mcf_delta.rs:
