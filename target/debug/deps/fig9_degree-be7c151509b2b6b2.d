/root/repo/target/debug/deps/fig9_degree-be7c151509b2b6b2.d: crates/bench/src/bin/fig9_degree.rs

/root/repo/target/debug/deps/fig9_degree-be7c151509b2b6b2: crates/bench/src/bin/fig9_degree.rs

crates/bench/src/bin/fig9_degree.rs:
