/root/repo/target/debug/deps/voyager-29afe379fecd5958.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/data.rs crates/core/src/delta_lstm.rs crates/core/src/model.rs crates/core/src/online.rs crates/core/src/replay.rs

/root/repo/target/debug/deps/libvoyager-29afe379fecd5958.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/data.rs crates/core/src/delta_lstm.rs crates/core/src/model.rs crates/core/src/online.rs crates/core/src/replay.rs

/root/repo/target/debug/deps/libvoyager-29afe379fecd5958.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/data.rs crates/core/src/delta_lstm.rs crates/core/src/model.rs crates/core/src/online.rs crates/core/src/replay.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/data.rs:
crates/core/src/delta_lstm.rs:
crates/core/src/model.rs:
crates/core/src/online.rs:
crates/core/src/replay.rs:
