/root/repo/target/debug/deps/voyager_tensor-b52715ff84719e18.d: crates/tensor/src/lib.rs crates/tensor/src/tape.rs crates/tensor/src/tensor.rs crates/tensor/src/gradcheck.rs crates/tensor/src/rng.rs Cargo.toml

/root/repo/target/debug/deps/libvoyager_tensor-b52715ff84719e18.rmeta: crates/tensor/src/lib.rs crates/tensor/src/tape.rs crates/tensor/src/tensor.rs crates/tensor/src/gradcheck.rs crates/tensor/src/rng.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/tape.rs:
crates/tensor/src/tensor.rs:
crates/tensor/src/gradcheck.rs:
crates/tensor/src/rng.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
