/root/repo/target/debug/deps/voyager_prefetch-281ba096d5d1776d.d: crates/prefetch/src/lib.rs crates/prefetch/src/bo.rs crates/prefetch/src/domino.rs crates/prefetch/src/hybrid.rs crates/prefetch/src/isb.rs crates/prefetch/src/isb_structural.rs crates/prefetch/src/markov.rs crates/prefetch/src/nextline.rs crates/prefetch/src/sms.rs crates/prefetch/src/stms.rs crates/prefetch/src/stride.rs crates/prefetch/src/throttle.rs crates/prefetch/src/vldp.rs Cargo.toml

/root/repo/target/debug/deps/libvoyager_prefetch-281ba096d5d1776d.rmeta: crates/prefetch/src/lib.rs crates/prefetch/src/bo.rs crates/prefetch/src/domino.rs crates/prefetch/src/hybrid.rs crates/prefetch/src/isb.rs crates/prefetch/src/isb_structural.rs crates/prefetch/src/markov.rs crates/prefetch/src/nextline.rs crates/prefetch/src/sms.rs crates/prefetch/src/stms.rs crates/prefetch/src/stride.rs crates/prefetch/src/throttle.rs crates/prefetch/src/vldp.rs Cargo.toml

crates/prefetch/src/lib.rs:
crates/prefetch/src/bo.rs:
crates/prefetch/src/domino.rs:
crates/prefetch/src/hybrid.rs:
crates/prefetch/src/isb.rs:
crates/prefetch/src/isb_structural.rs:
crates/prefetch/src/markov.rs:
crates/prefetch/src/nextline.rs:
crates/prefetch/src/sms.rs:
crates/prefetch/src/stms.rs:
crates/prefetch/src/stride.rs:
crates/prefetch/src/throttle.rs:
crates/prefetch/src/vldp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
