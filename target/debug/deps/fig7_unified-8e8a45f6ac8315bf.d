/root/repo/target/debug/deps/fig7_unified-8e8a45f6ac8315bf.d: crates/bench/src/bin/fig7_unified.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_unified-8e8a45f6ac8315bf.rmeta: crates/bench/src/bin/fig7_unified.rs Cargo.toml

crates/bench/src/bin/fig7_unified.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
