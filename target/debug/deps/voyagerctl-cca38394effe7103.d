/root/repo/target/debug/deps/voyagerctl-cca38394effe7103.d: crates/bench/src/bin/voyagerctl.rs Cargo.toml

/root/repo/target/debug/deps/libvoyagerctl-cca38394effe7103.rmeta: crates/bench/src/bin/voyagerctl.rs Cargo.toml

crates/bench/src/bin/voyagerctl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
