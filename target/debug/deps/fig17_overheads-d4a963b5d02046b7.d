/root/repo/target/debug/deps/fig17_overheads-d4a963b5d02046b7.d: crates/bench/src/bin/fig17_overheads.rs Cargo.toml

/root/repo/target/debug/deps/libfig17_overheads-d4a963b5d02046b7.rmeta: crates/bench/src/bin/fig17_overheads.rs Cargo.toml

crates/bench/src/bin/fig17_overheads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
