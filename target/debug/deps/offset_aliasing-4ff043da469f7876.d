/root/repo/target/debug/deps/offset_aliasing-4ff043da469f7876.d: crates/bench/src/bin/offset_aliasing.rs

/root/repo/target/debug/deps/offset_aliasing-4ff043da469f7876: crates/bench/src/bin/offset_aliasing.rs

crates/bench/src/bin/offset_aliasing.rs:
