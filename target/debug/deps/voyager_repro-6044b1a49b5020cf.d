/root/repo/target/debug/deps/voyager_repro-6044b1a49b5020cf.d: src/lib.rs

/root/repo/target/debug/deps/voyager_repro-6044b1a49b5020cf: src/lib.rs

src/lib.rs:
