/root/repo/target/debug/deps/fig12_features-ceeb2d73f83b42f9.d: crates/bench/src/bin/fig12_features.rs

/root/repo/target/debug/deps/fig12_features-ceeb2d73f83b42f9: crates/bench/src/bin/fig12_features.rs

crates/bench/src/bin/fig12_features.rs:
