/root/repo/target/debug/deps/proptests-c13a821d90b66031.d: crates/trace/tests/proptests.rs

/root/repo/target/debug/deps/proptests-c13a821d90b66031: crates/trace/tests/proptests.rs

crates/trace/tests/proptests.rs:
