/root/repo/target/debug/deps/offset_aliasing-63c3932b883f8779.d: crates/bench/src/bin/offset_aliasing.rs Cargo.toml

/root/repo/target/debug/deps/liboffset_aliasing-63c3932b883f8779.rmeta: crates/bench/src/bin/offset_aliasing.rs Cargo.toml

crates/bench/src/bin/offset_aliasing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
