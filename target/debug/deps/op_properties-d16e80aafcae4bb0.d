/root/repo/target/debug/deps/op_properties-d16e80aafcae4bb0.d: crates/tensor/tests/op_properties.rs Cargo.toml

/root/repo/target/debug/deps/libop_properties-d16e80aafcae4bb0.rmeta: crates/tensor/tests/op_properties.rs Cargo.toml

crates/tensor/tests/op_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
