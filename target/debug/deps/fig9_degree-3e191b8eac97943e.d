/root/repo/target/debug/deps/fig9_degree-3e191b8eac97943e.d: crates/bench/src/bin/fig9_degree.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_degree-3e191b8eac97943e.rmeta: crates/bench/src/bin/fig9_degree.rs Cargo.toml

crates/bench/src/bin/fig9_degree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
