/root/repo/target/debug/deps/mcf_delta-ae1339fafe6556cc.d: crates/bench/src/bin/mcf_delta.rs

/root/repo/target/debug/deps/mcf_delta-ae1339fafe6556cc: crates/bench/src/bin/mcf_delta.rs

crates/bench/src/bin/mcf_delta.rs:
