/root/repo/target/debug/deps/fig15_labels-7863fddccd5e7e05.d: crates/bench/src/bin/fig15_labels.rs

/root/repo/target/debug/deps/fig15_labels-7863fddccd5e7e05: crates/bench/src/bin/fig15_labels.rs

crates/bench/src/bin/fig15_labels.rs:
