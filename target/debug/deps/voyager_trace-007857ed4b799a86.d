/root/repo/target/debug/deps/voyager_trace-007857ed4b799a86.d: crates/trace/src/lib.rs crates/trace/src/access.rs crates/trace/src/gen/mod.rs crates/trace/src/gen/graph.rs crates/trace/src/gen/oltp.rs crates/trace/src/gen/spec.rs crates/trace/src/labels.rs crates/trace/src/serialize.rs crates/trace/src/simpoint.rs crates/trace/src/stats.rs crates/trace/src/vocab.rs Cargo.toml

/root/repo/target/debug/deps/libvoyager_trace-007857ed4b799a86.rmeta: crates/trace/src/lib.rs crates/trace/src/access.rs crates/trace/src/gen/mod.rs crates/trace/src/gen/graph.rs crates/trace/src/gen/oltp.rs crates/trace/src/gen/spec.rs crates/trace/src/labels.rs crates/trace/src/serialize.rs crates/trace/src/simpoint.rs crates/trace/src/stats.rs crates/trace/src/vocab.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/access.rs:
crates/trace/src/gen/mod.rs:
crates/trace/src/gen/graph.rs:
crates/trace/src/gen/oltp.rs:
crates/trace/src/gen/spec.rs:
crates/trace/src/labels.rs:
crates/trace/src/serialize.rs:
crates/trace/src/simpoint.rs:
crates/trace/src/stats.rs:
crates/trace/src/vocab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
