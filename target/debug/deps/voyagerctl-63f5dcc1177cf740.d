/root/repo/target/debug/deps/voyagerctl-63f5dcc1177cf740.d: crates/bench/src/bin/voyagerctl.rs

/root/repo/target/debug/deps/voyagerctl-63f5dcc1177cf740: crates/bench/src/bin/voyagerctl.rs

crates/bench/src/bin/voyagerctl.rs:
