/root/repo/target/debug/deps/voyager_tensor-4d44dc9d2d44265e.d: crates/tensor/src/lib.rs crates/tensor/src/tape.rs crates/tensor/src/tensor.rs crates/tensor/src/gradcheck.rs crates/tensor/src/rng.rs

/root/repo/target/debug/deps/voyager_tensor-4d44dc9d2d44265e: crates/tensor/src/lib.rs crates/tensor/src/tape.rs crates/tensor/src/tensor.rs crates/tensor/src/gradcheck.rs crates/tensor/src/rng.rs

crates/tensor/src/lib.rs:
crates/tensor/src/tape.rs:
crates/tensor/src/tensor.rs:
crates/tensor/src/gradcheck.rs:
crates/tensor/src/rng.rs:
