/root/repo/target/debug/deps/fig7_unified-89fc7856dd2e8230.d: crates/bench/src/bin/fig7_unified.rs

/root/repo/target/debug/deps/fig7_unified-89fc7856dd2e8230: crates/bench/src/bin/fig7_unified.rs

crates/bench/src/bin/fig7_unified.rs:
