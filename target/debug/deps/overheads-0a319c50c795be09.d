/root/repo/target/debug/deps/overheads-0a319c50c795be09.d: crates/bench/benches/overheads.rs Cargo.toml

/root/repo/target/debug/deps/liboverheads-0a319c50c795be09.rmeta: crates/bench/benches/overheads.rs Cargo.toml

crates/bench/benches/overheads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
