/root/repo/target/debug/deps/table2-3a4765c97842df83.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-3a4765c97842df83: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
