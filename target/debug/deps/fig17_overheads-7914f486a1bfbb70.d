/root/repo/target/debug/deps/fig17_overheads-7914f486a1bfbb70.d: crates/bench/src/bin/fig17_overheads.rs

/root/repo/target/debug/deps/fig17_overheads-7914f486a1bfbb70: crates/bench/src/bin/fig17_overheads.rs

crates/bench/src/bin/fig17_overheads.rs:
