/root/repo/target/debug/deps/paper_claims-2ef006d2e6731ff0.d: tests/paper_claims.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_claims-2ef006d2e6731ff0.rmeta: tests/paper_claims.rs Cargo.toml

tests/paper_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
