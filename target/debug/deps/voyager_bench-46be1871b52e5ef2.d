/root/repo/target/debug/deps/voyager_bench-46be1871b52e5ef2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libvoyager_bench-46be1871b52e5ef2.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libvoyager_bench-46be1871b52e5ef2.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
