/root/repo/target/debug/deps/voyager_trace-2b53b9cc23786af3.d: crates/trace/src/lib.rs crates/trace/src/access.rs crates/trace/src/gen/mod.rs crates/trace/src/gen/graph.rs crates/trace/src/gen/oltp.rs crates/trace/src/gen/spec.rs crates/trace/src/labels.rs crates/trace/src/serialize.rs crates/trace/src/simpoint.rs crates/trace/src/stats.rs crates/trace/src/vocab.rs

/root/repo/target/debug/deps/libvoyager_trace-2b53b9cc23786af3.rlib: crates/trace/src/lib.rs crates/trace/src/access.rs crates/trace/src/gen/mod.rs crates/trace/src/gen/graph.rs crates/trace/src/gen/oltp.rs crates/trace/src/gen/spec.rs crates/trace/src/labels.rs crates/trace/src/serialize.rs crates/trace/src/simpoint.rs crates/trace/src/stats.rs crates/trace/src/vocab.rs

/root/repo/target/debug/deps/libvoyager_trace-2b53b9cc23786af3.rmeta: crates/trace/src/lib.rs crates/trace/src/access.rs crates/trace/src/gen/mod.rs crates/trace/src/gen/graph.rs crates/trace/src/gen/oltp.rs crates/trace/src/gen/spec.rs crates/trace/src/labels.rs crates/trace/src/serialize.rs crates/trace/src/simpoint.rs crates/trace/src/stats.rs crates/trace/src/vocab.rs

crates/trace/src/lib.rs:
crates/trace/src/access.rs:
crates/trace/src/gen/mod.rs:
crates/trace/src/gen/graph.rs:
crates/trace/src/gen/oltp.rs:
crates/trace/src/gen/spec.rs:
crates/trace/src/labels.rs:
crates/trace/src/serialize.rs:
crates/trace/src/simpoint.rs:
crates/trace/src/stats.rs:
crates/trace/src/vocab.rs:
