/root/repo/target/debug/deps/voyager_runtime-b5b14c3b21f05c7a.d: crates/runtime/src/lib.rs crates/runtime/src/checkpoint.rs crates/runtime/src/microbatch.rs crates/runtime/src/serve.rs crates/runtime/src/trainer.rs

/root/repo/target/debug/deps/libvoyager_runtime-b5b14c3b21f05c7a.rlib: crates/runtime/src/lib.rs crates/runtime/src/checkpoint.rs crates/runtime/src/microbatch.rs crates/runtime/src/serve.rs crates/runtime/src/trainer.rs

/root/repo/target/debug/deps/libvoyager_runtime-b5b14c3b21f05c7a.rmeta: crates/runtime/src/lib.rs crates/runtime/src/checkpoint.rs crates/runtime/src/microbatch.rs crates/runtime/src/serve.rs crates/runtime/src/trainer.rs

crates/runtime/src/lib.rs:
crates/runtime/src/checkpoint.rs:
crates/runtime/src/microbatch.rs:
crates/runtime/src/serve.rs:
crates/runtime/src/trainer.rs:
