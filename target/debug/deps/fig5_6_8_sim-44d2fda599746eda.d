/root/repo/target/debug/deps/fig5_6_8_sim-44d2fda599746eda.d: crates/bench/src/bin/fig5_6_8_sim.rs

/root/repo/target/debug/deps/fig5_6_8_sim-44d2fda599746eda: crates/bench/src/bin/fig5_6_8_sim.rs

crates/bench/src/bin/fig5_6_8_sim.rs:
