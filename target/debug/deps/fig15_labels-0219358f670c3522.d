/root/repo/target/debug/deps/fig15_labels-0219358f670c3522.d: crates/bench/src/bin/fig15_labels.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_labels-0219358f670c3522.rmeta: crates/bench/src/bin/fig15_labels.rs Cargo.toml

crates/bench/src/bin/fig15_labels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
