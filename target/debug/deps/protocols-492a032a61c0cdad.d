/root/repo/target/debug/deps/protocols-492a032a61c0cdad.d: crates/core/tests/protocols.rs Cargo.toml

/root/repo/target/debug/deps/libprotocols-492a032a61c0cdad.rmeta: crates/core/tests/protocols.rs Cargo.toml

crates/core/tests/protocols.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
