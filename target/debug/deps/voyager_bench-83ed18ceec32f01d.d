/root/repo/target/debug/deps/voyager_bench-83ed18ceec32f01d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/voyager_bench-83ed18ceec32f01d: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
