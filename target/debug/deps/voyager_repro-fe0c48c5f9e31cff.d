/root/repo/target/debug/deps/voyager_repro-fe0c48c5f9e31cff.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libvoyager_repro-fe0c48c5f9e31cff.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
