/root/repo/target/debug/deps/layer_gradcheck-7c7a7aeaf6bdfb71.d: crates/nn/tests/layer_gradcheck.rs Cargo.toml

/root/repo/target/debug/deps/liblayer_gradcheck-7c7a7aeaf6bdfb71.rmeta: crates/nn/tests/layer_gradcheck.rs Cargo.toml

crates/nn/tests/layer_gradcheck.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
