/root/repo/target/debug/deps/fig10_11_breakdown-c8577ab95e8fad70.d: crates/bench/src/bin/fig10_11_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_11_breakdown-c8577ab95e8fad70.rmeta: crates/bench/src/bin/fig10_11_breakdown.rs Cargo.toml

crates/bench/src/bin/fig10_11_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
