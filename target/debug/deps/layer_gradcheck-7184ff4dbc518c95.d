/root/repo/target/debug/deps/layer_gradcheck-7184ff4dbc518c95.d: crates/nn/tests/layer_gradcheck.rs

/root/repo/target/debug/deps/layer_gradcheck-7184ff4dbc518c95: crates/nn/tests/layer_gradcheck.rs

crates/nn/tests/layer_gradcheck.rs:
