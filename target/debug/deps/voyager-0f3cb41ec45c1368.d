/root/repo/target/debug/deps/voyager-0f3cb41ec45c1368.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/data.rs crates/core/src/delta_lstm.rs crates/core/src/model.rs crates/core/src/online.rs crates/core/src/replay.rs

/root/repo/target/debug/deps/voyager-0f3cb41ec45c1368: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/data.rs crates/core/src/delta_lstm.rs crates/core/src/model.rs crates/core/src/online.rs crates/core/src/replay.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/data.rs:
crates/core/src/delta_lstm.rs:
crates/core/src/model.rs:
crates/core/src/online.rs:
crates/core/src/replay.rs:
