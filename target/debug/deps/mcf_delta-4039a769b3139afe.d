/root/repo/target/debug/deps/mcf_delta-4039a769b3139afe.d: crates/bench/src/bin/mcf_delta.rs Cargo.toml

/root/repo/target/debug/deps/libmcf_delta-4039a769b3139afe.rmeta: crates/bench/src/bin/mcf_delta.rs Cargo.toml

crates/bench/src/bin/mcf_delta.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
