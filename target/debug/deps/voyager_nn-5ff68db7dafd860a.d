/root/repo/target/debug/deps/voyager_nn-5ff68db7dafd860a.d: crates/nn/src/lib.rs crates/nn/src/compress.rs crates/nn/src/serialize.rs crates/nn/src/grads.rs crates/nn/src/hier_softmax.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs Cargo.toml

/root/repo/target/debug/deps/libvoyager_nn-5ff68db7dafd860a.rmeta: crates/nn/src/lib.rs crates/nn/src/compress.rs crates/nn/src/serialize.rs crates/nn/src/grads.rs crates/nn/src/hier_softmax.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs Cargo.toml

crates/nn/src/lib.rs:
crates/nn/src/compress.rs:
crates/nn/src/serialize.rs:
crates/nn/src/grads.rs:
crates/nn/src/hier_softmax.rs:
crates/nn/src/layers.rs:
crates/nn/src/optim.rs:
crates/nn/src/params.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
