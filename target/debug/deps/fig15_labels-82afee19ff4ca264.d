/root/repo/target/debug/deps/fig15_labels-82afee19ff4ca264.d: crates/bench/src/bin/fig15_labels.rs

/root/repo/target/debug/deps/fig15_labels-82afee19ff4ca264: crates/bench/src/bin/fig15_labels.rs

crates/bench/src/bin/fig15_labels.rs:
