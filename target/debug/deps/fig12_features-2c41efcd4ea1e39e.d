/root/repo/target/debug/deps/fig12_features-2c41efcd4ea1e39e.d: crates/bench/src/bin/fig12_features.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_features-2c41efcd4ea1e39e.rmeta: crates/bench/src/bin/fig12_features.rs Cargo.toml

crates/bench/src/bin/fig12_features.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
