/root/repo/target/debug/deps/fig17_overheads-297b90b808512fcd.d: crates/bench/src/bin/fig17_overheads.rs

/root/repo/target/debug/deps/fig17_overheads-297b90b808512fcd: crates/bench/src/bin/fig17_overheads.rs

crates/bench/src/bin/fig17_overheads.rs:
