/root/repo/target/debug/deps/fig9_degree-e48d1547928560d0.d: crates/bench/src/bin/fig9_degree.rs

/root/repo/target/debug/deps/fig9_degree-e48d1547928560d0: crates/bench/src/bin/fig9_degree.rs

crates/bench/src/bin/fig9_degree.rs:
