/root/repo/target/debug/deps/voyager_tensor-fcbbf3498e570ea6.d: crates/tensor/src/lib.rs crates/tensor/src/tape.rs crates/tensor/src/tensor.rs crates/tensor/src/gradcheck.rs crates/tensor/src/rng.rs

/root/repo/target/debug/deps/libvoyager_tensor-fcbbf3498e570ea6.rlib: crates/tensor/src/lib.rs crates/tensor/src/tape.rs crates/tensor/src/tensor.rs crates/tensor/src/gradcheck.rs crates/tensor/src/rng.rs

/root/repo/target/debug/deps/libvoyager_tensor-fcbbf3498e570ea6.rmeta: crates/tensor/src/lib.rs crates/tensor/src/tape.rs crates/tensor/src/tensor.rs crates/tensor/src/gradcheck.rs crates/tensor/src/rng.rs

crates/tensor/src/lib.rs:
crates/tensor/src/tape.rs:
crates/tensor/src/tensor.rs:
crates/tensor/src/gradcheck.rs:
crates/tensor/src/rng.rs:
